package puzzlenet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// testParams is easy enough for real solving in tests.
var testParams = puzzle.Params{K: 2, M: 6, L: 32}

func newTestListener(t *testing.T, opts ...ListenerOption) (*Listener, *puzzle.Issuer) {
	t.Helper()
	issuer, err := puzzle.NewIssuer(puzzle.WithParams(testParams))
	if err != nil {
		t.Fatalf("NewIssuer: %v", err)
	}
	l, err := Listen("127.0.0.1:0", issuer, opts...)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, issuer
}

// echoAccepted echoes one message per accepted connection.
func echoAccepted(t *testing.T, l *Listener) {
	t.Helper()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
}

func TestSolvingDialerGetsService(t *testing.T) {
	l, _ := newTestListener(t)
	echoAccepted(t, l)

	var solvedHashes uint64
	d := &Dialer{OnSolve: func(_ puzzle.Params, hashes uint64) { solvedHashes = hashes }}
	conn, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()

	msg := []byte("hello puzzles")
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("echo = %q, want %q", buf, msg)
	}
	if solvedHashes == 0 {
		t.Error("dialer reported zero solve hashes")
	}
	stats := l.Stats()
	if stats.Verified != 1 || stats.Challenged != 1 {
		t.Errorf("stats = %+v, want 1 challenged/verified", stats)
	}
}

func TestNonSolvingClientRejected(t *testing.T) {
	l, _ := newTestListener(t, WithHandshakeTimeout(2*time.Second))
	echoAccepted(t, l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	// Ignore the challenge and send raw application bytes: the listener
	// must reject (garbage is not a SOLUTION frame) and close.
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// Drain the challenge frame, then expect REJECT or close.
	buf := make([]byte, 1024)
	deadline := time.Now().Add(5 * time.Second)
	closed := false
	for time.Now().Before(deadline) {
		if _, err := conn.Read(buf); err != nil {
			closed = true
			break
		}
	}
	if !closed {
		t.Fatal("connection not closed after bogus solution")
	}
	stats := l.Stats()
	if stats.Rejected == 0 && stats.Errors == 0 {
		t.Errorf("neither Rejected nor Errors incremented: %+v", stats)
	}
	if stats.Verified != 0 {
		t.Errorf("Verified = %d for a non-solving client", stats.Verified)
	}
}

func TestBogusSolutionRejected(t *testing.T) {
	l, _ := newTestListener(t, WithHandshakeTimeout(2*time.Second))
	echoAccepted(t, l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	frameType, _, err := readFrame(conn)
	if err != nil || frameType != frameChallenge {
		t.Fatalf("greeting = 0x%02x, %v", frameType, err)
	}
	// Fabricate a structurally valid but wrong solution.
	garbage := make([]byte, 2+3+4+int(testParams.K)*testParams.SolutionBytes())
	garbage[0] = 0xfd
	garbage[1] = byte(len(garbage))
	if err := writeFrame(conn, frameSolution, garbage); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	ft, _, err := readFrame(conn)
	if err == nil && ft == frameAccept {
		t.Fatal("server accepted a bogus solution")
	}
	if l.Stats().Verified != 0 {
		t.Error("Verified counter incremented for bogus solution")
	}
}

func TestPolicyNeverWelcomesImmediately(t *testing.T) {
	l, _ := newTestListener(t, WithPolicy(PolicyNever{}))
	echoAccepted(t, l)
	d := &Dialer{}
	conn, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if l.Stats().Challenged != 0 {
		t.Errorf("Challenged = %d, want 0", l.Stats().Challenged)
	}
}

func TestPolicyPendingOpportunistic(t *testing.T) {
	p := PolicyPending{Threshold: 3}
	if p.Challenge(0) || p.Challenge(2) {
		t.Error("challenged below threshold")
	}
	if !p.Challenge(3) || !p.Challenge(10) {
		t.Error("not challenged at/above threshold")
	}
}

func TestConcurrentDialers(t *testing.T) {
	l, _ := newTestListener(t)
	echoAccepted(t, l)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := &Dialer{}
			conn, err := d.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			if _, err := conn.Write([]byte("x")); err != nil {
				errs <- err
				return
			}
			buf := make([]byte, 1)
			if _, err := io.ReadFull(conn, buf); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("dialer: %v", err)
	}
	if got := l.Stats().Verified; got != n {
		t.Errorf("Verified = %d, want %d", got, n)
	}
}

func TestDialerContextCancellation(t *testing.T) {
	// A server that issues an unsolvable challenge keeps the dialer
	// solving; cancellation must abort.
	issuer, err := puzzle.NewIssuer(puzzle.WithParams(puzzle.Params{K: 1, M: 60, L: 64}))
	if err != nil {
		t.Fatalf("NewIssuer: %v", err)
	}
	l, err := Listen("127.0.0.1:0", issuer)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	d := &Dialer{}
	if _, err := d.DialContext(ctx, "tcp", l.Addr().String()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DialContext error = %v, want DeadlineExceeded", err)
	}
}

func TestProxyEndToEnd(t *testing.T) {
	// Backend echo server (no puzzles).
	backend, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("backend listen: %v", err)
	}
	t.Cleanup(func() { _ = backend.Close() })
	go func() {
		for {
			conn, err := backend.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()

	l, _ := newTestListener(t)
	proxy := NewProxy(l, backend.Addr().String())
	go func() { _ = proxy.Serve() }()
	t.Cleanup(func() { _ = proxy.Close() })

	d := &Dialer{}
	conn, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial through proxy: %v", err)
	}
	defer conn.Close()
	msg := []byte("via the verification tier")
	if _, err := conn.Write(msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("echo = %q, want %q", buf, msg)
	}
}

func TestRuntimeRetuning(t *testing.T) {
	l, issuer := newTestListener(t)
	echoAccepted(t, l)
	if err := issuer.SetParams(puzzle.Params{K: 1, M: 4, L: 32}); err != nil {
		t.Fatalf("SetParams: %v", err)
	}
	var gotParams puzzle.Params
	d := &Dialer{OnSolve: func(p puzzle.Params, _ uint64) { gotParams = p }}
	conn, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if gotParams.M != 4 || gotParams.K != 1 {
		t.Errorf("challenge params = %v, want retuned (1,4)", gotParams)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, frameChallenge, payload); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	ft, got, err := readFrame(&buf)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if ft != frameChallenge || !bytes.Equal(got, payload) {
		t.Errorf("frame = 0x%02x %v", ft, got)
	}
	// Oversize payloads rejected on both paths.
	if err := writeFrame(&buf, frameWelcome, make([]byte, maxFrameLen+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("writeFrame oversize error = %v", err)
	}
	var evil bytes.Buffer
	evil.Write([]byte{frameWelcome, 0xff, 0xff})
	if _, _, err := readFrame(&evil); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("readFrame oversize error = %v", err)
	}
}

func TestFlowBinding(t *testing.T) {
	// Distinct nonces must give distinct flows on the same conn pair.
	a := puzzle.FlowID{ISN: 1}
	b := puzzle.FlowID{ISN: 2}
	if a == b {
		t.Fatal("flows with distinct nonces equal")
	}
	// IPv6 folding is deterministic.
	addr := &net.TCPAddr{IP: net.ParseIP("2001:db8::1"), Port: 443}
	ip1, p1 := addrParts(addr)
	ip2, p2 := addrParts(addr)
	if ip1 != ip2 || p1 != p2 {
		t.Error("IPv6 folding not deterministic")
	}
	if p1 != 443 {
		t.Errorf("port = %d, want 443", p1)
	}
}
