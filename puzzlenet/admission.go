package puzzlenet

import (
	"net"
	"sync"
	"time"
)

// admission is per-source token-bucket admission control keyed by the
// remote host (port stripped, so one attacking machine cannot mint a fresh
// bucket per ephemeral port). It refills lazily on each check and bounds
// its own memory: when the bucket table exceeds maxSources, fully-refilled
// (idle) buckets are evicted, and if none are idle the table is cleared —
// a bounded-memory trade that at worst briefly re-grants a burst to active
// sources, which the pending-verification limit still caps.
type admission struct {
	mu         sync.Mutex
	rate       float64 // tokens per second
	burst      float64 // bucket capacity
	maxSources int
	buckets    map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// defaultMaxSources bounds the bucket table (≈100 B/entry → a few MiB
// worst case).
const defaultMaxSources = 1 << 15

func newAdmission(rate float64, burst int) *admission {
	if burst < 1 {
		burst = 1
	}
	return &admission{
		rate:       rate,
		burst:      float64(burst),
		maxSources: defaultMaxSources,
		buckets:    make(map[string]*bucket),
	}
}

// allow spends one token from addr's bucket, reporting whether the
// connection is admitted.
func (a *admission) allow(addr net.Addr, now time.Time) bool {
	key := hostOnly(addr)
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[key]
	if b == nil {
		if len(a.buckets) >= a.maxSources {
			a.evictLocked(now)
		}
		b = &bucket{tokens: a.burst, last: now}
		a.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * a.rate
		if b.tokens > a.burst {
			b.tokens = a.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictLocked drops idle buckets (refilled to capacity by now); if every
// source is active it clears the table rather than grow without bound.
func (a *admission) evictLocked(now time.Time) {
	for key, b := range a.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*a.rate >= a.burst {
			delete(a.buckets, key)
		}
	}
	if len(a.buckets) >= a.maxSources {
		a.buckets = make(map[string]*bucket)
	}
}

// hostOnly extracts the host part of an address, falling back to the whole
// string for non-host/port addresses (pipes, in-memory test conns).
func hostOnly(addr net.Addr) string {
	if addr == nil {
		return ""
	}
	s := addr.String()
	if host, _, err := net.SplitHostPort(s); err == nil {
		return host
	}
	return s
}
