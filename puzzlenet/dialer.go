package puzzlenet

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// Dialer opens connections through a puzzle-gated listener, solving
// challenges transparently — the client half of the patched kernel.
type Dialer struct {
	// Inner performs the TCP dial; nil uses a default net.Dialer.
	Inner *net.Dialer
	// Solver performs the brute-force search; the zero value is used when
	// nil.
	Solver *puzzle.Solver
	// HandshakeTimeout bounds the preamble (default 30 s).
	HandshakeTimeout time.Duration
	// Stats counters (read with atomic care only in tests; the Dialer is
	// otherwise safe for concurrent use because these are written per
	// call without aggregation guarantees).
	OnSolve func(params puzzle.Params, hashes uint64)
}

// Dial connects and completes the puzzle preamble.
func (d *Dialer) Dial(network, addr string) (net.Conn, error) {
	return d.DialContext(context.Background(), network, addr)
}

// DialContext connects and completes the puzzle preamble.
func (d *Dialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	inner := d.Inner
	if inner == nil {
		inner = &net.Dialer{}
	}
	conn, err := inner.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	if err := d.preamble(ctx, conn); err != nil {
		_ = conn.Close()
		return nil, err
	}
	return conn, nil
}

func (d *Dialer) preamble(ctx context.Context, conn net.Conn) error {
	timeout := d.HandshakeTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return err
	}
	frameType, body, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("puzzlenet: read greeting: %w", err)
	}
	switch frameType {
	case frameWelcome:
		return conn.SetDeadline(time.Time{})
	case frameChallenge:
		// fall through to solving
	default:
		return fmt.Errorf("puzzlenet: unexpected frame 0x%02x: %w", frameType, ErrProtocol)
	}
	if len(body) < 6 {
		return fmt.Errorf("puzzlenet: short challenge frame: %w", ErrProtocol)
	}
	nonce := binary.BigEndian.Uint32(body)
	chOpt := tcpopt.Option{Kind: body[4], Data: body[6:]}
	blk, err := tcpopt.ParseChallenge(chOpt)
	if err != nil {
		return fmt.Errorf("puzzlenet: parse challenge: %w", err)
	}
	_ = nonce // binding is implicit: the server derived the flow itself

	solver := d.Solver
	if solver == nil {
		solver = &puzzle.Solver{}
	}
	sol, stats, err := solver.Solve(ctx, blk.Challenge)
	if err != nil {
		return fmt.Errorf("puzzlenet: solve: %w", err)
	}
	if d.OnSolve != nil {
		d.OnSolve(blk.Challenge.Params, stats.Hashes)
	}
	solOpt, err := tcpopt.EncodeSolution(tcpopt.SolutionBlock{
		MSS: 1460, WScale: 7, HasTimestamp: true, Solution: sol,
	})
	if err != nil {
		return fmt.Errorf("puzzlenet: encode solution: %w", err)
	}
	payload := make([]byte, 0, 2+len(solOpt.Data))
	payload = append(payload, solOpt.Kind, byte(2+len(solOpt.Data)))
	payload = append(payload, solOpt.Data...)
	if err := writeFrame(conn, frameSolution, payload); err != nil {
		return fmt.Errorf("puzzlenet: send solution: %w", err)
	}
	frameType, _, err = readFrame(conn)
	if err != nil {
		return fmt.Errorf("puzzlenet: read verdict: %w", err)
	}
	if frameType != frameAccept {
		return ErrRejected
	}
	return conn.SetDeadline(time.Time{})
}
