package puzzlenet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// DialerStats is a snapshot of a Dialer's counters.
type DialerStats struct {
	// Dials counts TCP dial attempts (including the retry after an
	// expired-challenge REJECT).
	Dials uint64
	// Welcomed counts preambles answered with WELCOME (no puzzle).
	Welcomed uint64
	// Solved counts challenges solved.
	Solved uint64
	// Accepted counts preambles that ended in ACCEPT.
	Accepted uint64
	// Rejected counts preambles that ended in REJECT (any reason).
	Rejected uint64
	// Retries counts automatic redials after an expired-challenge REJECT.
	Retries uint64
	// Errors counts dial and preamble failures other than REJECT.
	Errors uint64
}

// Dialer opens connections through a puzzle-gated listener, solving
// challenges transparently — the client half of the patched kernel.
// A Dialer is safe for concurrent use by multiple goroutines.
type Dialer struct {
	// Inner performs the TCP dial; nil uses a default net.Dialer.
	Inner *net.Dialer
	// Solver performs the brute-force search; the zero value is used when
	// nil.
	Solver *puzzle.Solver
	// HandshakeTimeout bounds the preamble (default 30 s).
	HandshakeTimeout time.Duration
	// OnSolve, when non-nil, is invoked after each successful solve with
	// the challenge parameters and the number of hash operations spent.
	// Concurrency contract: concurrent Dial/DialContext calls invoke it
	// concurrently, so the callback must be safe for concurrent use (or
	// the Dialer must not be shared). Aggregate counters are available on
	// Stats without any callback.
	OnSolve func(params puzzle.Params, hashes uint64)
	// NoRetryExpired disables the automatic single redial after a server
	// REJECT(expired). The zero value retries once: an expired challenge
	// means the solve outlasted the replay window, and a fresh challenge
	// usually succeeds.
	NoRetryExpired bool

	dials, welcomed, solved, accepted, rejected, retries, errs atomic.Uint64
}

// Stats returns a snapshot of the dialer counters. Counters are updated
// atomically; a snapshot taken while dials are in flight is internally
// consistent per counter but not across counters.
func (d *Dialer) Stats() DialerStats {
	return DialerStats{
		Dials:    d.dials.Load(),
		Welcomed: d.welcomed.Load(),
		Solved:   d.solved.Load(),
		Accepted: d.accepted.Load(),
		Rejected: d.rejected.Load(),
		Retries:  d.retries.Load(),
		Errors:   d.errs.Load(),
	}
}

// Dial connects and completes the puzzle preamble.
func (d *Dialer) Dial(network, addr string) (net.Conn, error) {
	return d.DialContext(context.Background(), network, addr)
}

// DialContext connects and completes the puzzle preamble. If the server
// answers the solution with REJECT(expired) — the solve outlasted the
// challenge replay window — the dialer redials and solves a fresh
// challenge once (disable with NoRetryExpired).
func (d *Dialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	conn, err := d.dialOnce(ctx, network, addr)
	if err == nil || d.NoRetryExpired {
		return conn, err
	}
	var rej *RejectError
	if errors.As(err, &rej) && rej.Reason == RejectExpired {
		d.retries.Add(1)
		return d.dialOnce(ctx, network, addr)
	}
	return nil, err
}

func (d *Dialer) dialOnce(ctx context.Context, network, addr string) (net.Conn, error) {
	inner := d.Inner
	if inner == nil {
		inner = &net.Dialer{}
	}
	d.dials.Add(1)
	conn, err := inner.DialContext(ctx, network, addr)
	if err != nil {
		d.errs.Add(1)
		return nil, err
	}
	if err := d.preamble(ctx, conn); err != nil {
		_ = conn.Close()
		if errors.Is(err, ErrRejected) {
			d.rejected.Add(1)
		} else {
			d.errs.Add(1)
		}
		return nil, err
	}
	d.accepted.Add(1)
	return conn, nil
}

func (d *Dialer) preamble(ctx context.Context, conn net.Conn) error {
	timeout := d.HandshakeTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return err
	}
	frameType, body, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("puzzlenet: read greeting: %w", err)
	}
	switch frameType {
	case frameWelcome:
		d.welcomed.Add(1)
		return conn.SetDeadline(time.Time{})
	case frameChallenge:
		// fall through to solving
	case frameReject:
		// Fast shed before any challenge: busy or throttled.
		return &RejectError{Reason: rejectReason(body)}
	default:
		return fmt.Errorf("puzzlenet: unexpected frame 0x%02x: %w", frameType, ErrProtocol)
	}
	if len(body) < 6 {
		return fmt.Errorf("puzzlenet: short challenge frame: %w", ErrProtocol)
	}
	nonce := binary.BigEndian.Uint32(body)
	chOpt := tcpopt.Option{Kind: body[4], Data: body[6:]}
	blk, err := tcpopt.ParseChallenge(chOpt)
	if err != nil {
		return fmt.Errorf("puzzlenet: parse challenge: %w", err)
	}
	_ = nonce // binding is implicit: the server derived the flow itself

	solver := d.Solver
	if solver == nil {
		solver = &puzzle.Solver{}
	}
	sol, stats, err := solver.Solve(ctx, blk.Challenge)
	if err != nil {
		return fmt.Errorf("puzzlenet: solve: %w", err)
	}
	d.solved.Add(1)
	if d.OnSolve != nil {
		d.OnSolve(blk.Challenge.Params, stats.Hashes)
	}
	solOpt, err := tcpopt.EncodeSolution(tcpopt.SolutionBlock{
		MSS: 1460, WScale: 7, HasTimestamp: true, Solution: sol,
	})
	if err != nil {
		return fmt.Errorf("puzzlenet: encode solution: %w", err)
	}
	payload := make([]byte, 0, 2+len(solOpt.Data))
	payload = append(payload, solOpt.Kind, byte(2+len(solOpt.Data)))
	payload = append(payload, solOpt.Data...)
	if err := writeFrame(conn, frameSolution, payload); err != nil {
		return fmt.Errorf("puzzlenet: send solution: %w", err)
	}
	frameType, body, err = readFrame(conn)
	if err != nil {
		return fmt.Errorf("puzzlenet: read verdict: %w", err)
	}
	if frameType != frameAccept {
		if frameType == frameReject {
			return &RejectError{Reason: rejectReason(body)}
		}
		return ErrRejected
	}
	return conn.SetDeadline(time.Time{})
}
