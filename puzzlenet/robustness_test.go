package puzzlenet

import (
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/puzzlenet/netfault"
)

// leakCheck snapshots the goroutine count and registers a cleanup that
// fails the test if the count has not settled back by its deadline. Call
// it before creating any listener/proxy/backends so their cleanups (which
// run LIFO, i.e. before this check) have already torn everything down.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after settle\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	})
}

func TestListenerShutdownForceClosesStalledPreambles(t *testing.T) {
	leakCheck(t)
	issuer, err := puzzle.NewIssuer(puzzle.WithParams(testParams))
	if err != nil {
		t.Fatalf("NewIssuer: %v", err)
	}
	// Long handshake timeout: stalled preambles would pin goroutines for
	// 30s without the forced drain.
	l, err := Listen("127.0.0.1:0", issuer)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()

	// 16 clients that read the challenge and stall forever.
	var conns []net.Conn
	for i := 0; i < 16; i++ {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		conns = append(conns, c)
	}
	// Wait until the preambles are in flight.
	waitFor(t, time.Second, func() bool { return l.Stats().Inflight >= 16 })

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = l.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown error = %v, want DeadlineExceeded (stalled preambles)", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Shutdown took %v, want close to the 300ms deadline", elapsed)
	}
	for _, c := range conns {
		_ = c.Close()
	}
}

func TestListenerShutdownCleanWhenIdle(t *testing.T) {
	leakCheck(t)
	l, _ := newTestListener(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := l.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown on idle listener = %v, want nil", err)
	}
}

func TestConcurrentAcceptClose(t *testing.T) {
	// Accept racing Close must neither panic nor deadlock, and every
	// Accept must return net.ErrClosed after Close.
	leakCheck(t)
	for round := 0; round < 10; round++ {
		issuer, err := puzzle.NewIssuer(puzzle.WithParams(testParams))
		if err != nil {
			t.Fatalf("NewIssuer: %v", err)
		}
		l, err := Listen("127.0.0.1:0", issuer, WithHandshakeTimeout(time.Second))
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					conn, err := l.Accept()
					if err != nil {
						if !errors.Is(err, net.ErrClosed) {
							t.Errorf("Accept error = %v, want net.ErrClosed", err)
						}
						return
					}
					_ = conn.Close()
				}
			}()
		}
		// A few dialers in flight while Close lands.
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				d := &Dialer{HandshakeTimeout: time.Second}
				if conn, err := d.Dial("tcp", l.Addr().String()); err == nil {
					_ = conn.Close()
				}
			}()
		}
		time.Sleep(time.Duration(round) * time.Millisecond)
		_ = l.Close()
		wg.Wait()
	}
}

func TestProxyConcurrentServeClose(t *testing.T) {
	leakCheck(t)
	backend := newEchoBackend(t)
	for round := 0; round < 5; round++ {
		issuer, err := puzzle.NewIssuer(puzzle.WithParams(testParams))
		if err != nil {
			t.Fatalf("NewIssuer: %v", err)
		}
		l, err := Listen("127.0.0.1:0", issuer, WithHandshakeTimeout(time.Second))
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		p := NewProxy(l, backend)
		serveDone := make(chan error, 1)
		go func() { serveDone <- p.Serve() }()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				d := &Dialer{HandshakeTimeout: time.Second}
				if conn, err := d.Dial("tcp", l.Addr().String()); err == nil {
					_, _ = conn.Write([]byte("x"))
					_ = conn.Close()
				}
			}()
		}
		time.Sleep(time.Duration(round) * 2 * time.Millisecond)
		_ = p.Close()
		wg.Wait()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v after Close, want nil", err)
		}
	}
}

func TestMaxPendingShedsWithBusyReject(t *testing.T) {
	leakCheck(t)
	l, _ := newTestListener(t, WithMaxPending(1), WithHandshakeTimeout(2*time.Second))
	echoAccepted(t, l)

	// Fill the single preamble slot with a stalled client.
	stall, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	waitFor(t, time.Second, func() bool { return l.Stats().Inflight >= 1 })

	// The next dial must be shed fast with REJECT(busy).
	d := &Dialer{HandshakeTimeout: 2 * time.Second}
	start := time.Now()
	_, err = d.Dial("tcp", l.Addr().String())
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != RejectBusy {
		t.Fatalf("over-limit dial error = %v, want RejectError{RejectBusy}", err)
	}
	if !errors.Is(err, ErrRejected) {
		t.Error("RejectError does not unwrap to ErrRejected")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("shed took %v, want fast REJECT", elapsed)
	}
	if got := l.Stats().Shed; got != 1 {
		t.Errorf("Shed = %d, want 1", got)
	}

	// Free the slot; service resumes.
	_ = stall.Close()
	waitFor(t, 2*time.Second, func() bool { return l.Stats().Inflight == 0 })
	conn, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial after drain: %v", err)
	}
	_ = conn.Close()
	_ = l.Close()
}

func TestSourceRateThrottles(t *testing.T) {
	l, _ := newTestListener(t, WithSourceRate(1, 2), WithHandshakeTimeout(2*time.Second))
	echoAccepted(t, l)

	d := &Dialer{HandshakeTimeout: 2 * time.Second}
	// Burst of 2 admitted, third throttled (all loopback dials share the
	// 127.0.0.1 bucket).
	for i := 0; i < 2; i++ {
		conn, err := d.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		_ = conn.Close()
	}
	_, err := d.Dial("tcp", l.Addr().String())
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != RejectThrottled {
		t.Fatalf("third dial error = %v, want RejectError{RejectThrottled}", err)
	}
	if got := l.Stats().Throttled; got != 1 {
		t.Errorf("Throttled = %d, want 1", got)
	}
}

func TestDialerRetriesExpiredChallenge(t *testing.T) {
	// A clock that issues the first challenge 2 minutes in the past: the
	// first verification sees an expired solution and REJECTs with
	// reason=expired; the dialer's automatic retry gets a fresh challenge
	// and succeeds.
	var calls atomic.Int64
	clock := func() time.Time {
		if calls.Add(1) == 1 {
			return time.Now().Add(-2 * time.Minute)
		}
		return time.Now()
	}
	issuer, err := puzzle.NewIssuer(puzzle.WithParams(testParams), puzzle.WithClock(clock))
	if err != nil {
		t.Fatalf("NewIssuer: %v", err)
	}
	l, err := Listen("127.0.0.1:0", issuer)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })
	echoAccepted(t, l)

	d := &Dialer{}
	conn, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial with expired first challenge: %v", err)
	}
	_ = conn.Close()
	stats := d.Stats()
	if stats.Retries != 1 {
		t.Errorf("Retries = %d, want 1", stats.Retries)
	}
	if stats.Dials != 2 || stats.Accepted != 1 || stats.Rejected != 1 {
		t.Errorf("stats = %+v, want 2 dials / 1 accepted / 1 rejected", stats)
	}
	if got := l.Stats().Rejected; got != 1 {
		t.Errorf("listener Rejected = %d, want 1", got)
	}

	// NoRetryExpired surfaces the RejectError instead.
	calls.Store(0)
	d2 := &Dialer{NoRetryExpired: true}
	_, err = d2.Dial("tcp", l.Addr().String())
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != RejectExpired {
		t.Fatalf("NoRetryExpired dial error = %v, want RejectError{RejectExpired}", err)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	leakCheck(t)
	backend := newEchoBackend(t)
	l, _ := newTestListener(t)
	// First 8 dials fail: with 0 retries and threshold 3, the breaker
	// opens after the third failed splice; after the cooldown a half-open
	// probe reaches the healthy backend and the breaker closes.
	p := NewProxy(l, backend,
		WithBackendDialContext(netfault.FailN(8, netfault.DialTCP)),
		WithBackendRetry(0, 10*time.Millisecond, 50*time.Millisecond),
		WithBreaker(3, 100*time.Millisecond),
		WithDialTimeout(time.Second),
	)
	go func() { _ = p.Serve() }()

	d := &Dialer{HandshakeTimeout: 2 * time.Second}
	dialOnce := func() error {
		conn, err := d.Dial("tcp", l.Addr().String())
		if err != nil {
			return err
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("x")); err != nil {
			return err
		}
		buf := make([]byte, 1)
		_, err = io.ReadFull(conn, buf)
		return err
	}

	// Drive failures until the breaker opens. The preamble still verifies;
	// the splice then drops the conn, so the client sees a post-accept
	// close.
	waitFor(t, 5*time.Second, func() bool {
		_ = dialOnce()
		st := p.Stats()
		return st.BreakerOpens >= 1
	})
	if st := p.Stats(); st.BackendFailures < 3 {
		t.Errorf("BackendFailures = %d, want >= 3", st.BackendFailures)
	}

	// While open in DegradeShed, connections are dropped without dialing.
	shedBefore := p.Stats().BackendShed
	_ = dialOnce()
	if got := p.Stats().BackendShed; got <= shedBefore {
		t.Errorf("BackendShed = %d, want > %d while breaker open", got, shedBefore)
	}

	// After the cooldown, probes burn down FailN's remaining failures and
	// then the splice path recovers end to end.
	waitFor(t, 10*time.Second, func() bool { return dialOnce() == nil })
	if st := p.Stats(); st.BreakerState != BreakerClosed {
		t.Errorf("BreakerState = %v after recovery, want closed", st.BreakerState)
	}
	_ = p.Close()
}

func TestProxyShedsOverSpliceLimit(t *testing.T) {
	leakCheck(t)
	backend := newEchoBackend(t)
	l, _ := newTestListener(t)
	p := NewProxy(l, backend, WithMaxSplices(1))
	go func() { _ = p.Serve() }()

	d := &Dialer{HandshakeTimeout: 2 * time.Second}
	first, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	// Establish the splice (echo round-trip proves it's live).
	if _, err := first.Write([]byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := io.ReadFull(first, make([]byte, 1)); err != nil {
		t.Fatalf("Read: %v", err)
	}

	// The second verified connection exceeds the limit: preamble succeeds
	// but the proxy closes it instead of splicing.
	second, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial second: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool { return p.Stats().SpliceShed >= 1 })
	_ = second.Close()
	_ = first.Close()
	_ = p.Close()
}

func TestProxyShutdownDeadline(t *testing.T) {
	leakCheck(t)
	backend := newEchoBackend(t)
	l, _ := newTestListener(t)
	p := NewProxy(l, backend)
	go func() { _ = p.Serve() }()

	// A live splice that never finishes on its own.
	d := &Dialer{HandshakeTimeout: 2 * time.Second}
	conn, err := d.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := io.ReadFull(conn, make([]byte, 1)); err != nil {
		t.Fatalf("Read: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = p.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown error = %v, want DeadlineExceeded (live splice)", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Shutdown took %v, want close to the deadline", elapsed)
	}
	_ = conn.Close()
}

// newEchoBackend starts a plain echo server and returns its address.
func newEchoBackend(t *testing.T) string {
	t.Helper()
	backend, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("backend listen: %v", err)
	}
	t.Cleanup(func() { _ = backend.Close() })
	go func() {
		for {
			conn, err := backend.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
	return backend.Addr().String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", d)
}
