package puzzlenet

import (
	"bytes"
	"testing"
	"testing/iotest"
)

// FuzzFrameDecode fuzzes the preamble frame codec on arbitrary wire bytes:
// readFrame must never panic or over-read, anything it accepts must
// re-encode to exactly the bytes consumed, and oversized length prefixes
// must be rejected before any payload is buffered (the unauthenticated-
// peer memory bound).
func FuzzFrameDecode(f *testing.F) {
	var welcome bytes.Buffer
	_ = writeFrame(&welcome, frameWelcome, nil)
	var challenge bytes.Buffer
	_ = writeFrame(&challenge, frameChallenge, []byte{2, 17, 32, 1, 2, 3, 4})
	f.Add(welcome.Bytes())
	f.Add(challenge.Bytes())
	f.Add([]byte{})
	f.Add([]byte{frameSolution, 0xff, 0xff})
	f.Add([]byte{frameAccept, 0, 0})
	// Truncated frame: header promises 16 payload bytes, stream carries 3.
	f.Add([]byte{frameChallenge, 0x00, 0x10, 1, 2, 3})
	// Oversize length prefix: 513 > maxFrameLen, must reject from the header.
	f.Add([]byte{frameSolution, 0x02, 0x01})
	// Bare header with a length and no payload at all.
	f.Add([]byte{frameReject, 0x00, 0x01})
	// REJECT with a reason byte (the extended shed/expiry signalling).
	f.Add([]byte{frameReject, 0x00, 0x01, byte(RejectBusy)})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		frameType, payload, err := readFrame(r)
		// Split writes: a peer trickling one byte per segment must decode
		// to the same verdict as the contiguous stream.
		obType, obPayload, obErr := readFrame(iotest.OneByteReader(bytes.NewReader(data)))
		if (err == nil) != (obErr == nil) {
			t.Fatalf("split-write decode disagrees: %v vs %v", err, obErr)
		}
		if err == nil && (obType != frameType || !bytes.Equal(obPayload, payload)) {
			t.Fatalf("split-write frame differs: %v %x vs %v %x", obType, obPayload, frameType, payload)
		}
		if err != nil {
			// Length prefixes beyond the bound must be caught from the
			// header alone, with no payload read.
			if len(data) >= 3 {
				if length := int(data[1])<<8 | int(data[2]); length > maxFrameLen {
					if rest := r.Len(); rest != len(data)-3 {
						t.Fatalf("oversized frame read %d payload bytes before rejecting", len(data)-3-rest)
					}
				}
			}
			return
		}
		if len(payload) > maxFrameLen {
			t.Fatalf("accepted %d-byte payload beyond maxFrameLen", len(payload))
		}
		consumed := len(data) - r.Len()
		if consumed != 3+len(payload) {
			t.Fatalf("consumed %d bytes for a %d-byte payload", consumed, len(payload))
		}
		var re bytes.Buffer
		if err := writeFrame(&re, frameType, payload); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re.Bytes(), data[:consumed]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re.Bytes(), data[:consumed])
		}
		// Decoding the re-encoded frame must be stable.
		ft2, p2, err := readFrame(bytes.NewReader(re.Bytes()))
		if err != nil || ft2 != frameType || !bytes.Equal(p2, payload) {
			t.Fatalf("round trip unstable: %v %x vs %v %x (err %v)", ft2, p2, frameType, payload, err)
		}
	})
}
