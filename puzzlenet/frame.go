package puzzlenet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types of the preamble protocol.
const (
	frameWelcome   = 0x01
	frameChallenge = 0x02
	frameSolution  = 0x03
	frameAccept    = 0x04
	frameReject    = 0x05
)

// maxFrameLen bounds frame payloads; challenge and solution blocks fit
// comfortably, and the bound caps what an unauthenticated peer can make us
// buffer.
const maxFrameLen = 512

var (
	// ErrRejected reports that the server rejected our solution.
	ErrRejected = errors.New("puzzlenet: solution rejected")
	// ErrProtocol reports a malformed or unexpected frame.
	ErrProtocol = errors.New("puzzlenet: protocol error")
	// ErrFrameTooLarge reports a frame exceeding maxFrameLen.
	ErrFrameTooLarge = errors.New("puzzlenet: frame too large")
)

// writeFrame writes one frame: [type:1][len:2 BE][payload].
func writeFrame(w io.Writer, frameType byte, payload []byte) error {
	if len(payload) > maxFrameLen {
		return fmt.Errorf("puzzlenet: %d-byte payload: %w", len(payload), ErrFrameTooLarge)
	}
	buf := make([]byte, 3+len(payload))
	buf[0] = frameType
	binary.BigEndian.PutUint16(buf[1:], uint16(len(payload)))
	copy(buf[3:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame.
func readFrame(r io.Reader) (frameType byte, payload []byte, err error) {
	var hdr [3]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := binary.BigEndian.Uint16(hdr[1:])
	if length > maxFrameLen {
		return 0, nil, fmt.Errorf("puzzlenet: %d-byte frame: %w", length, ErrFrameTooLarge)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}
