package puzzlenet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types of the preamble protocol.
const (
	frameWelcome   = 0x01
	frameChallenge = 0x02
	frameSolution  = 0x03
	frameAccept    = 0x04
	frameReject    = 0x05
)

// maxFrameLen bounds frame payloads; challenge and solution blocks fit
// comfortably, and the bound caps what an unauthenticated peer can make us
// buffer.
const maxFrameLen = 512

var (
	// ErrRejected reports that the server rejected the connection. Inspect
	// the wrapped *RejectError for the machine-readable reason.
	ErrRejected = errors.New("puzzlenet: solution rejected")
	// ErrProtocol reports a malformed or unexpected frame.
	ErrProtocol = errors.New("puzzlenet: protocol error")
	// ErrFrameTooLarge reports a frame exceeding maxFrameLen.
	ErrFrameTooLarge = errors.New("puzzlenet: frame too large")
	// ErrBackendDown reports that the proxy's circuit breaker is open and
	// the degraded mode is DegradeShed.
	ErrBackendDown = errors.New("puzzlenet: backend unavailable")
)

// RejectReason is the machine-readable cause carried in a REJECT frame's
// first payload byte. Legacy peers send an empty payload, which decodes as
// RejectGeneric; unknown future codes also fold into RejectGeneric on the
// client so the reason set can grow.
type RejectReason uint8

const (
	// RejectGeneric is an unspecified rejection (also the legacy empty
	// payload).
	RejectGeneric RejectReason = 0
	// RejectBadSolution reports a solution that failed verification.
	RejectBadSolution RejectReason = 1
	// RejectExpired reports a solution whose challenge fell outside the
	// replay window — the one retryable rejection (the client was honest,
	// just slow).
	RejectExpired RejectReason = 2
	// RejectBusy reports load shedding: the pending-verification limit was
	// reached and the server refused to queue the connection.
	RejectBusy RejectReason = 3
	// RejectThrottled reports per-source admission control: the source
	// exceeded its token-bucket rate.
	RejectThrottled RejectReason = 4
)

// String implements fmt.Stringer.
func (r RejectReason) String() string {
	switch r {
	case RejectBadSolution:
		return "bad-solution"
	case RejectExpired:
		return "expired"
	case RejectBusy:
		return "busy"
	case RejectThrottled:
		return "throttled"
	default:
		return "rejected"
	}
}

// RejectError is the error returned by Dialer when the server answers with
// a REJECT frame. It unwraps to ErrRejected, so existing
// errors.Is(err, ErrRejected) checks keep working.
type RejectError struct {
	Reason RejectReason
}

// Error implements error.
func (e *RejectError) Error() string {
	return fmt.Sprintf("puzzlenet: server rejected connection (%s)", e.Reason)
}

// Unwrap lets errors.Is(err, ErrRejected) match.
func (e *RejectError) Unwrap() error { return ErrRejected }

// writeReject writes a REJECT frame carrying the reason byte.
func writeReject(w io.Writer, reason RejectReason) error {
	return writeFrame(w, frameReject, []byte{byte(reason)})
}

// rejectReason decodes a REJECT payload; empty (legacy) and unknown codes
// fold into RejectGeneric.
func rejectReason(body []byte) RejectReason {
	if len(body) == 0 {
		return RejectGeneric
	}
	r := RejectReason(body[0])
	if r > RejectThrottled {
		return RejectGeneric
	}
	return r
}

// writeFrame writes one frame: [type:1][len:2 BE][payload].
func writeFrame(w io.Writer, frameType byte, payload []byte) error {
	if len(payload) > maxFrameLen {
		return fmt.Errorf("puzzlenet: %d-byte payload: %w", len(payload), ErrFrameTooLarge)
	}
	buf := make([]byte, 3+len(payload))
	buf[0] = frameType
	binary.BigEndian.PutUint16(buf[1:], uint16(len(payload)))
	copy(buf[3:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame.
func readFrame(r io.Reader) (frameType byte, payload []byte, err error) {
	var hdr [3]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := binary.BigEndian.Uint16(hdr[1:])
	if length > maxFrameLen {
		return 0, nil, fmt.Errorf("puzzlenet: %d-byte frame: %w", length, ErrFrameTooLarge)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}
