// Package netfault injects deterministic network faults under real
// net.Conn / net.Listener values: byte-level delays, chunked slow-loris
// writes, truncated streams, stalled reads, timed resets, and
// refused/black-holed backend dialers. It exists to drive chaos suites
// against the puzzlenet tier — every failure mode the simulator models
// (slow links, dead peers, mid-handshake resets) expressed as a wrapper a
// test can compose onto either side of a live loopback connection.
//
// Faults are plain data (Fault) applied per connection; a Listener applies
// a Plan callback to each accepted connection, so a test can inject a
// different fault per accept index deterministically.
package netfault

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"
)

// ErrTruncated reports a write cut short by Fault.TruncateWritesAfter.
var ErrTruncated = errors.New("netfault: stream truncated")

// ErrRefused reports a dial refused by Refuse.
var ErrRefused = errors.New("netfault: connection refused")

// Fault describes the misbehaviour injected into one connection. The zero
// value injects nothing.
type Fault struct {
	// ReadDelay pauses before every Read.
	ReadDelay time.Duration
	// WriteDelay pauses before every Write (and before every chunk when
	// ChunkBytes splits writes).
	WriteDelay time.Duration
	// ChunkBytes splits each Write into chunks of at most this many bytes,
	// each preceded by WriteDelay — the slow-loris shape. Zero writes
	// whole buffers.
	ChunkBytes int
	// TruncateWritesAfter cuts the stream after this many written bytes:
	// the remainder of the offending Write is dropped, the connection is
	// closed, and ErrTruncated is returned. Zero disables.
	TruncateWritesAfter int
	// StallReadsAfter blocks every Read after this many bytes have been
	// read, until the connection is closed. Zero disables; to stall from
	// the first byte use a negative value.
	StallReadsAfter int
	// CloseAfter arms a timer that hard-closes the connection (with an
	// RST where the transport supports it) after the duration — the
	// mid-preamble reset. Zero disables.
	CloseAfter time.Duration
}

// Conn wraps a net.Conn, injecting the configured fault. Close is safe to
// call multiple times and unblocks stalled reads and pending delays.
type Conn struct {
	net.Conn
	fault Fault

	mu           sync.Mutex
	readBytes    int
	writtenBytes int

	done      chan struct{}
	closeOnce sync.Once
	timer     *time.Timer
}

// New wraps conn with the fault.
func New(conn net.Conn, fault Fault) *Conn {
	c := &Conn{Conn: conn, fault: fault, done: make(chan struct{})}
	if fault.CloseAfter > 0 {
		c.mu.Lock()
		c.timer = time.AfterFunc(fault.CloseAfter, func() { _ = c.reset() })
		c.mu.Unlock()
	}
	return c
}

// delay sleeps for d unless the connection closes first; it reports
// whether the connection is still open.
func (c *Conn) delay(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-c.done:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.done:
		return false
	}
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	stalled := c.fault.StallReadsAfter != 0 && c.readBytes >= max(c.fault.StallReadsAfter, 0)
	c.mu.Unlock()
	if stalled {
		<-c.done
		return 0, net.ErrClosed
	}
	if !c.delay(c.fault.ReadDelay) {
		return 0, net.ErrClosed
	}
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.readBytes += n
	c.mu.Unlock()
	return n, err
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	chunk := c.fault.ChunkBytes
	if chunk <= 0 {
		chunk = len(p)
	}
	var written int
	for written < len(p) {
		if !c.delay(c.fault.WriteDelay) {
			return written, net.ErrClosed
		}
		end := written + chunk
		if end > len(p) {
			end = len(p)
		}
		part := p[written:end]
		truncated := false
		if c.fault.TruncateWritesAfter > 0 {
			c.mu.Lock()
			budget := c.fault.TruncateWritesAfter - c.writtenBytes
			c.mu.Unlock()
			if budget <= 0 {
				_ = c.Close()
				return written, ErrTruncated
			}
			if len(part) > budget {
				part = part[:budget]
				truncated = true
			}
		}
		n, err := c.Conn.Write(part)
		c.mu.Lock()
		c.writtenBytes += n
		c.mu.Unlock()
		written += n
		if err != nil {
			return written, err
		}
		if truncated {
			// The budget cut this chunk short: truncate the stream here.
			_ = c.Close()
			return written, ErrTruncated
		}
	}
	return written, nil
}

// Close implements net.Conn; it releases stalled reads and pending delays.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.done)
		c.mu.Lock()
		if c.timer != nil {
			c.timer.Stop()
		}
		c.mu.Unlock()
		err = c.Conn.Close()
	})
	return err
}

// reset hard-closes: for TCP the zero linger turns the close into an RST,
// which is what a mid-preamble reset looks like on the wire.
func (c *Conn) reset() error {
	if tcp, ok := c.Conn.(*net.TCPConn); ok {
		_ = tcp.SetLinger(0)
	}
	return c.Close()
}

// Listener wraps a net.Listener, applying Plan to every accepted
// connection. The accept index i starts at 0 and increments per accept, so
// a deterministic plan can assign faults round-robin or by position.
type Listener struct {
	net.Listener
	// Plan returns the fault for the i-th accepted connection. A nil Plan
	// injects nothing.
	Plan func(i int, conn net.Conn) Fault

	mu sync.Mutex
	n  int
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	l.mu.Unlock()
	if l.Plan == nil {
		return conn, nil
	}
	return New(conn, l.Plan(i, conn)), nil
}

// Refuse returns a context-aware dial function that fails every dial
// immediately — the dead-backend fault.
func Refuse() func(ctx context.Context, addr string) (net.Conn, error) {
	return func(context.Context, string) (net.Conn, error) {
		return nil, ErrRefused
	}
}

// Blackhole returns a context-aware dial function that never completes:
// it blocks until ctx is done and returns its error — the black-holed
// backend (SYNs into the void). Callers must bound the dial with a
// context deadline, as puzzlenet.Proxy does.
func Blackhole() func(ctx context.Context, addr string) (net.Conn, error) {
	return func(ctx context.Context, _ string) (net.Conn, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

// FailN returns a context-aware dial function that fails the first n dials
// with ErrRefused, then delegates to next — the recovering backend, for
// breaker and retry tests.
func FailN(n int, next func(ctx context.Context, addr string) (net.Conn, error)) func(ctx context.Context, addr string) (net.Conn, error) {
	var mu sync.Mutex
	var failed int
	return func(ctx context.Context, addr string) (net.Conn, error) {
		mu.Lock()
		fail := failed < n
		if fail {
			failed++
		}
		mu.Unlock()
		if fail {
			return nil, ErrRefused
		}
		return next(ctx, addr)
	}
}

// DialTCP is a context-aware TCP dialer for composing with FailN.
func DialTCP(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}
