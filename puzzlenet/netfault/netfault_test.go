package netfault

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns two ends of an in-memory connection.
func pipePair() (net.Conn, net.Conn) {
	return net.Pipe()
}

func TestZeroFaultIsTransparent(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	fb := New(b, Fault{})
	defer fb.Close()

	msg := []byte("hello")
	go func() { _, _ = a.Write(msg) }()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(fb, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("read %q, want %q", buf, msg)
	}
}

func TestTruncateWritesAfter(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	fa := New(a, Fault{TruncateWritesAfter: 3})

	got := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(b)
		got <- buf
	}()
	n, err := fa.Write([]byte("abcdef"))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("Write error = %v, want ErrTruncated", err)
	}
	if n != 3 {
		t.Errorf("wrote %d bytes, want 3", n)
	}
	// The truncating side closed itself; the peer sees EOF after 3 bytes.
	if buf := <-got; !bytes.Equal(buf, []byte("abc")) {
		t.Errorf("peer read %q, want %q", buf, "abc")
	}
	// Further writes fail without touching the inner conn.
	if _, err := fa.Write([]byte("x")); err == nil {
		t.Error("write after truncation succeeded")
	}
}

func TestStallReadsUnblockOnClose(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	fb := New(b, Fault{StallReadsAfter: -1})

	done := make(chan error, 1)
	go func() {
		_, err := fb.Read(make([]byte, 1))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	_ = fb.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("stalled read error = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled read did not unblock on Close")
	}
}

func TestChunkedSlowWrites(t *testing.T) {
	a, b := pipePair()
	defer b.Close()
	fa := New(a, Fault{ChunkBytes: 2, WriteDelay: 10 * time.Millisecond})
	defer fa.Close()

	msg := []byte("abcdef")
	start := time.Now()
	go func() { _, _ = fa.Write(msg) }()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("read %q, want %q", buf, msg)
	}
	// 3 chunks × 10ms delay each.
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("chunked write took %v, want >= 30ms of pacing", elapsed)
	}
}

func TestCloseAfterResets(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	fb := New(b, Fault{CloseAfter: 30 * time.Millisecond})
	defer fb.Close()

	buf := make([]byte, 1)
	if _, err := fb.Read(buf); err == nil {
		t.Fatal("read after timed reset succeeded")
	}
}

func TestListenerPlanPerAccept(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	var indices []int
	fl := &Listener{Listener: inner, Plan: func(i int, _ net.Conn) Fault {
		indices = append(indices, i)
		return Fault{}
	}}
	defer fl.Close()

	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := fl.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", fl.Addr().String())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer c.Close()
		(<-accepted).Close()
	}
	if len(indices) != 2 || indices[0] != 0 || indices[1] != 1 {
		t.Errorf("plan indices = %v, want [0 1]", indices)
	}
}

func TestBackendDialers(t *testing.T) {
	if _, err := Refuse()(context.Background(), "x"); !errors.Is(err, ErrRefused) {
		t.Errorf("Refuse error = %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := Blackhole()(ctx, "x"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Blackhole error = %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("Blackhole returned before ctx deadline")
	}

	calls := 0
	next := func(context.Context, string) (net.Conn, error) {
		calls++
		return nil, nil
	}
	dial := FailN(2, next)
	for i := 0; i < 2; i++ {
		if _, err := dial(context.Background(), "x"); !errors.Is(err, ErrRefused) {
			t.Fatalf("FailN dial %d error = %v, want ErrRefused", i, err)
		}
	}
	if _, err := dial(context.Background(), "x"); err != nil {
		t.Fatalf("FailN dial 3 error = %v, want delegate", err)
	}
	if calls != 1 {
		t.Errorf("delegate called %d times, want 1", calls)
	}
}
