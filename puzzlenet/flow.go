package puzzlenet

import (
	"crypto/sha256"
	"net"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// flowFor derives the puzzle flow binding for a connection: the 4-tuple
// plus a nonce standing in for the SYN's initial sequence number. IPv6
// addresses are folded into 4 bytes by hashing, preserving the binding
// property (distinct flows get distinct identifiers with overwhelming
// probability).
func flowFor(conn net.Conn, nonce uint32) puzzle.FlowID {
	src, srcPort := addrParts(conn.RemoteAddr())
	dst, dstPort := addrParts(conn.LocalAddr())
	return puzzle.FlowID{
		SrcIP:   src,
		DstIP:   dst,
		SrcPort: srcPort,
		DstPort: dstPort,
		ISN:     nonce,
	}
}

func addrParts(addr net.Addr) ([4]byte, uint16) {
	tcp, ok := addr.(*net.TCPAddr)
	if !ok || tcp == nil {
		return fold(addr.String()), 0
	}
	if v4 := tcp.IP.To4(); v4 != nil {
		var out [4]byte
		copy(out[:], v4)
		return out, uint16(tcp.Port)
	}
	return fold(tcp.IP.String()), uint16(tcp.Port)
}

func fold(s string) [4]byte {
	sum := sha256.Sum256([]byte(s))
	var out [4]byte
	copy(out[:], sum[:])
	return out
}
