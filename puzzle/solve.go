package puzzle

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// SolveStats reports accounting detail from a solve.
type SolveStats struct {
	// Hashes is the number of hash operations performed across all k
	// solutions. Its expectation is close to Params.ExpectedSolveHashes.
	Hashes uint64
}

// Solve brute-forces a challenge with no hash budget and no cancellation,
// scanning candidates from a fixed origin. For rate-limited or cancellable
// solving use a Solver.
func Solve(ch Challenge) (Solution, SolveStats, error) {
	var s Solver
	return s.Solve(context.Background(), ch)
}

// Solver brute-forces challenges. The zero value searches deterministically
// from candidate zero with an unlimited budget.
type Solver struct {
	// MaxHashes bounds the total hash operations spent on one challenge;
	// zero means unlimited. When the budget runs out Solve returns
	// ErrBudgetExhausted.
	MaxHashes uint64
	// Rand, when non-nil, randomises the starting candidate for each
	// solution index so that repeated solves of the same challenge do
	// different work (and so the hash count follows the true geometric
	// distribution rather than the fixed scan order).
	Rand *rand.Rand
}

// Solve finds the k solutions to ch. It checks ctx between candidates and
// returns ctx.Err if cancelled.
func (sv *Solver) Solve(ctx context.Context, ch Challenge) (Solution, SolveStats, error) {
	var stats SolveStats
	if err := ch.Params.Validate(); err != nil {
		return Solution{}, stats, err
	}
	if len(ch.Preimage) != ch.Params.SolutionBytes() {
		return Solution{}, stats, fmt.Errorf("puzzle: preimage %d bytes, want %d: %w",
			len(ch.Preimage), ch.Params.SolutionBytes(), ErrWrongLength)
	}
	sol := Solution{
		Params:    ch.Params,
		Timestamp: ch.Timestamp,
		Solutions: make([][]byte, 0, ch.Params.K),
	}
	solBytes := ch.Params.SolutionBytes()
	for i := uint8(1); i <= ch.Params.K; i++ {
		var start uint64
		if sv.Rand != nil {
			start = sv.Rand.Uint64()
		}
		s, n, err := sv.solveOne(ctx, ch, i, start, solBytes, stats.Hashes)
		stats.Hashes += n
		if err != nil {
			return Solution{}, stats, err
		}
		sol.Solutions = append(sol.Solutions, s)
	}
	return sol, stats, nil
}

// solveOne searches for a single solution with index i starting at candidate
// counter start. spent is the budget already consumed by earlier indices.
func (sv *Solver) solveOne(
	ctx context.Context,
	ch Challenge,
	index uint8,
	start uint64,
	solBytes int,
	spent uint64,
) (solution []byte, hashes uint64, err error) {
	candidate := make([]byte, solBytes)
	const checkEvery = 1 << 12
	for n := uint64(0); ; n++ {
		if n%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, n, err
			}
		}
		if sv.MaxHashes > 0 && spent+n >= sv.MaxHashes {
			return nil, n, fmt.Errorf("puzzle: %d hashes spent: %w", spent+n, ErrBudgetExhausted)
		}
		encodeCandidate(candidate, start+n)
		if solutionValid(ch.Preimage, ch.Params, index, candidate) {
			out := make([]byte, solBytes)
			copy(out, candidate)
			return out, n + 1, nil
		}
	}
}

// encodeCandidate writes counter c into buf (little-endian, truncated or
// zero-padded to len(buf)).
func encodeCandidate(buf []byte, c uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], c)
	n := copy(buf, tmp[:])
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
}

// SampleSolveHashes samples the number of hash operations a solve would
// take, without hashing: the sum of k independent geometric random variables
// with success probability 2^-m. The simulator uses this to charge solve
// time to a modelled CPU instead of burning host cycles.
func SampleSolveHashes(rnd *rand.Rand, p Params) uint64 {
	prob := math.Exp2(-float64(p.M))
	var total uint64
	for i := 0; i < int(p.K); i++ {
		total += sampleGeometric(rnd, prob)
	}
	return total
}

// sampleGeometric samples the number of Bernoulli(p) trials up to and
// including the first success, via inversion.
func sampleGeometric(rnd *rand.Rand, p float64) uint64 {
	if p >= 1 {
		return 1
	}
	u := rnd.Float64()
	for u == 0 {
		u = rnd.Float64()
	}
	n := math.Ceil(math.Log(u) / math.Log(1-p))
	if n < 1 {
		return 1
	}
	if n > math.MaxInt64 {
		return math.MaxInt64
	}
	return uint64(n)
}
