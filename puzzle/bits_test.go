package puzzle

import (
	"testing"
	"testing/quick"
)

func TestLeadingBitsEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b []byte
		n    int
		want bool
	}{
		{"zero bits always equal", []byte{0x00}, []byte{0xff}, 0, true},
		{"full byte equal", []byte{0xab}, []byte{0xab}, 8, true},
		{"full byte unequal", []byte{0xab}, []byte{0xaa}, 8, false},
		{"partial equal", []byte{0b1010_1111}, []byte{0b1010_0000}, 4, true},
		{"partial unequal", []byte{0b1010_1111}, []byte{0b1011_0000}, 4, false},
		{"crosses byte boundary", []byte{0xff, 0b1100_0000}, []byte{0xff, 0b1101_1111}, 10, true},
		{"boundary mismatch", []byte{0xff, 0b1100_0000}, []byte{0xff, 0b1101_1111}, 12, false},
		{"multi byte equal", []byte{1, 2, 3}, []byte{1, 2, 3}, 24, true},
		{"first byte differs", []byte{1, 2, 3}, []byte{9, 2, 3}, 24, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := leadingBitsEqual(tt.a, tt.b, tt.n); got != tt.want {
				t.Errorf("leadingBitsEqual(%x, %x, %d) = %v, want %v", tt.a, tt.b, tt.n, got, tt.want)
			}
		})
	}
}

func TestCountLeadingMatchingBits(t *testing.T) {
	tests := []struct {
		a, b []byte
		want int
	}{
		{[]byte{0xff}, []byte{0xff}, 8},
		{[]byte{0x00}, []byte{0x80}, 0},
		{[]byte{0x00}, []byte{0x40}, 1},
		{[]byte{0xff, 0xf0}, []byte{0xff, 0xf8}, 12},
		{[]byte{}, []byte{0xff}, 0},
	}
	for _, tt := range tests {
		if got := CountLeadingMatchingBits(tt.a, tt.b); got != tt.want {
			t.Errorf("CountLeadingMatchingBits(%x, %x) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

// Property: leadingBitsEqual(a, b, n) holds iff CountLeadingMatchingBits is
// at least n (for n within the shorter slice).
func TestLeadingBitsAgreement(t *testing.T) {
	f := func(a, b [4]byte, n uint8) bool {
		bits := int(n) % 33
		eq := leadingBitsEqual(a[:], b[:], bits)
		return eq == (CountLeadingMatchingBits(a[:], b[:]) >= bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: equality of the first n bits is reflexive and symmetric.
func TestLeadingBitsSymmetry(t *testing.T) {
	f := func(a, b [8]byte, n uint8) bool {
		bits := int(n) % 65
		if !leadingBitsEqual(a[:], a[:], bits) {
			return false
		}
		return leadingBitsEqual(a[:], b[:], bits) == leadingBitsEqual(b[:], a[:], bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
