package puzzle

// leadingBitsEqual reports whether the first n bits of a and b are equal.
// Both slices must hold at least ceil(n/8) bytes.
func leadingBitsEqual(a, b []byte, n int) bool {
	if n <= 0 {
		return true
	}
	full := n / 8
	for i := 0; i < full; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	rem := n % 8
	if rem == 0 {
		return true
	}
	mask := byte(0xff) << (8 - rem)
	return a[full]&mask == b[full]&mask
}

// CountLeadingMatchingBits returns the number of leading bits on which a and
// b agree, up to 8·min(len(a), len(b)).
func CountLeadingMatchingBits(a, b []byte) int {
	n := min(len(a), len(b))
	bits := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			bits += 8
			continue
		}
		x := a[i] ^ b[i]
		for mask := byte(0x80); mask != 0; mask >>= 1 {
			if x&mask != 0 {
				return bits
			}
			bits++
		}
	}
	return bits
}
