// Package puzzle implements the Juels–Brainard client-puzzle scheme used by
// the TCP client-puzzles extension of Noureddine et al., "Revisiting Client
// Puzzles for State Exhaustion Attacks Resilience" (DSN 2019).
//
// A puzzle challenge is derived statelessly from a server secret, a
// timestamp, and the packet-level data of the TCP SYN that triggered it
// (source/destination addresses and ports plus the initial sequence number).
// The server computes
//
//	y = SHA-256(secret || timestamp || packet-level data)
//
// and challenges the client with the first L bits of y (the preimage P). The
// client must find K solutions s_1..s_K, each L bits long, such that the
// first M bits of SHA-256(P || i || s_i) equal the first M bits of P. The
// server re-derives P from the echoed timestamp and the ACK packet's header
// and verifies the solutions without ever having stored per-connection
// state.
//
// Expected work (paper §4.1): solving costs K·2^(M-1) hash operations on
// average; issuing costs one hash; verifying costs 1 + K/2 hashes on average
// when solutions are checked in random order.
//
// The Issuer type provides stateless issue/verify with replay protection
// (timestamp windows). Solve and Solver perform the client-side brute-force
// search. All difficulty parameters can be retuned at runtime
// (Issuer.SetParams), mirroring the sysctl interface of the kernel patch.
package puzzle
