package puzzle_test

import (
	"fmt"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// The full protocol round trip: the server issues a challenge bound to a
// connection's flow, the client solves it, and the stateless server
// verifies.
func Example() {
	issuer, err := puzzle.NewIssuer(puzzle.WithParams(puzzle.Params{K: 2, M: 8, L: 32}))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	flow := puzzle.FlowID{
		SrcIP: [4]byte{192, 0, 2, 7}, DstIP: [4]byte{198, 51, 100, 1},
		SrcPort: 52044, DstPort: 443, ISN: 12345,
	}

	ch := issuer.Issue(flow)
	sol, _, err := puzzle.Solve(ch)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("verified:", issuer.Verify(flow, sol) == nil)

	// A solution replayed on a different connection fails.
	other := flow
	other.SrcPort = 40000
	fmt.Println("replay rejected:", issuer.Verify(other, sol) != nil)
	// Output:
	// verified: true
	// replay rejected: true
}

// Difficulty parameters expose the work model of the paper's §4.
func ExampleParams() {
	p := puzzle.Params{K: 2, M: 17, L: 64}
	fmt.Printf("solve: %.0f hashes expected\n", p.ExpectedSolveHashes())
	fmt.Printf("verify: %.1f hashes expected\n", p.ExpectedVerifyHashes())
	fmt.Printf("blind guess probability: 2^-%d\n", int(p.K)*int(p.M))
	// Output:
	// solve: 131072 hashes expected
	// verify: 2.0 hashes expected
	// blind guess probability: 2^-34
}
