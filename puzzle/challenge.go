package puzzle

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// SecretLen is the length of the server secret in bytes.
const SecretLen = 32

// DefaultMaxAge is the default replay window: solutions older than this are
// rejected (tunable via the kernel's sysctl interface in the paper).
const DefaultMaxAge = 30 * time.Second

// DefaultMaxSkew is the default tolerated clock skew for timestamps that
// appear to come from the future.
const DefaultMaxSkew = 2 * time.Second

// Challenge is a puzzle challenge as carried in a SYN-ACK's option block.
type Challenge struct {
	// Params is the difficulty the solutions must meet.
	Params Params
	// Timestamp is the issue time in Unix seconds, echoed by the client so
	// that the stateless server can re-derive the preimage and enforce
	// expiry.
	Timestamp uint32
	// Preimage is the first Params.L bits (L/8 bytes) of the challenge hash
	// y = h(secret || timestamp || flow).
	Preimage []byte
}

// Solution is a solved challenge as carried in an ACK's option block.
type Solution struct {
	// Params echoes the difficulty the solutions were computed for.
	Params Params
	// Timestamp echoes the challenge timestamp.
	Timestamp uint32
	// Solutions holds the k solution bitstrings, each Params.L bits.
	Solutions [][]byte
}

// VerifyInfo reports accounting detail from a verification.
type VerifyInfo struct {
	// Hashes is the number of hash operations performed (1 to re-derive the
	// preimage plus one per checked solution).
	Hashes int
	// Checked is the number of solutions inspected before acceptance or the
	// first violation.
	Checked int
}

// Issuer creates and verifies puzzle challenges statelessly. An Issuer is
// safe for concurrent use; difficulty parameters may be retuned at runtime
// with SetParams, mirroring the sysctl interface of the kernel patch.
type Issuer struct {
	mu      sync.RWMutex
	secret  [SecretLen]byte
	params  Params
	maxAge  time.Duration
	maxSkew time.Duration
	now     func() time.Time
}

// IssuerOption customises an Issuer.
type IssuerOption func(*Issuer)

// WithParams sets the initial difficulty parameters.
func WithParams(p Params) IssuerOption {
	return func(is *Issuer) { is.params = p }
}

// WithSecret sets the server secret. The secret must be SecretLen bytes; it
// is copied.
func WithSecret(secret []byte) IssuerOption {
	return func(is *Issuer) { copy(is.secret[:], secret) }
}

// WithMaxAge sets the replay window after which challenges expire.
func WithMaxAge(d time.Duration) IssuerOption {
	return func(is *Issuer) { is.maxAge = d }
}

// WithMaxSkew sets the tolerated forward clock skew.
func WithMaxSkew(d time.Duration) IssuerOption {
	return func(is *Issuer) { is.maxSkew = d }
}

// WithClock overrides the time source (used by tests and the simulator).
func WithClock(now func() time.Time) IssuerOption {
	return func(is *Issuer) { is.now = now }
}

// NewIssuer returns an Issuer with a fresh random secret, the paper's
// default difficulty, and the default replay window.
func NewIssuer(opts ...IssuerOption) (*Issuer, error) {
	is := &Issuer{
		params:  DefaultParams(),
		maxAge:  DefaultMaxAge,
		maxSkew: DefaultMaxSkew,
		//tcpz:allow nodeterm — injectable default only; the simulator always overrides it with the engine clock via WithClock
		now: time.Now,
	}
	//tcpz:allow nodeterm — the secret only keys preimage derivation; simulated results are secret-independent (pzengine.Sim charges counts both sides derive from the same challenge) and real-protocol callers need a fresh secret
	if _, err := rand.Read(is.secret[:]); err != nil {
		return nil, fmt.Errorf("puzzle: generate secret: %w", err)
	}
	for _, opt := range opts {
		opt(is)
	}
	if err := is.params.Validate(); err != nil {
		return nil, err
	}
	return is, nil
}

// Params returns the current difficulty parameters.
func (is *Issuer) Params() Params {
	is.mu.RLock()
	defer is.mu.RUnlock()
	return is.params
}

// SetParams retunes the difficulty at runtime. Outstanding challenges issued
// under the previous parameters will no longer verify (the server is
// stateless and checks against the current setting only).
func (is *Issuer) SetParams(p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	is.mu.Lock()
	defer is.mu.Unlock()
	is.params = p
	return nil
}

// MaxAge returns the replay window.
func (is *Issuer) MaxAge() time.Duration {
	is.mu.RLock()
	defer is.mu.RUnlock()
	return is.maxAge
}

// SetMaxAge retunes the replay window at runtime.
func (is *Issuer) SetMaxAge(d time.Duration) {
	is.mu.Lock()
	defer is.mu.Unlock()
	is.maxAge = d
}

// Issue creates a challenge bound to the given flow at the current time.
// Issuing performs exactly one hash operation (g(p) = 1).
func (is *Issuer) Issue(flow FlowID) Challenge {
	is.mu.RLock()
	params := is.params
	now := is.now()
	is.mu.RUnlock()
	ts := uint32(now.Unix())
	return Challenge{
		Params:    params,
		Timestamp: ts,
		Preimage:  is.preimage(flow, ts, params),
	}
}

// IssueAt creates a challenge with an explicit timestamp. It exists for the
// simulator and for tests; production callers use Issue.
func (is *Issuer) IssueAt(flow FlowID, ts uint32) Challenge {
	is.mu.RLock()
	params := is.params
	is.mu.RUnlock()
	return Challenge{Params: params, Timestamp: ts, Preimage: is.preimage(flow, ts, params)}
}

// preimage computes the first params.L bits of h(secret || ts || flow).
func (is *Issuer) preimage(flow FlowID, ts uint32, params Params) []byte {
	buf := make([]byte, 0, SecretLen+4+16)
	buf = append(buf, is.secret[:]...)
	buf = binary.BigEndian.AppendUint32(buf, ts)
	buf = flow.appendBytes(buf)
	sum := sha256.Sum256(buf)
	pre := make([]byte, params.SolutionBytes())
	copy(pre, sum[:])
	return pre
}

// PreimageFor re-derives the challenge preimage for a flow and timestamp
// under the current parameters. It enables delegated or simulated
// verification (e.g. a front-end proxy that shares the secret, paper §7).
func (is *Issuer) PreimageFor(flow FlowID, ts uint32) []byte {
	is.mu.RLock()
	params := is.params
	is.mu.RUnlock()
	return is.preimage(flow, ts, params)
}

// ValidateTimestamp checks a solution timestamp against the replay window
// and clock-skew policy without verifying any solutions.
func (is *Issuer) ValidateTimestamp(ts uint32) error {
	is.mu.RLock()
	maxAge := is.maxAge
	maxSkew := is.maxSkew
	now := is.now()
	is.mu.RUnlock()
	issued := time.Unix(int64(ts), 0)
	if age := now.Sub(issued); age > maxAge {
		return fmt.Errorf("puzzle: solution age %v exceeds %v: %w", age, maxAge, ErrExpired)
	}
	if ahead := issued.Sub(now); ahead > maxSkew {
		return fmt.Errorf("puzzle: timestamp %v ahead of clock: %w", ahead, ErrFutureTimestamp)
	}
	return nil
}

// Verify checks a solution against the flow it claims to belong to. It
// performs no lookups in per-connection state: everything needed is
// re-derived from the secret, the echoed timestamp, and the packet header.
func (is *Issuer) Verify(flow FlowID, sol Solution) error {
	_, err := is.VerifyDetailed(flow, sol)
	return err
}

// VerifyDetailed is Verify with hash-operation accounting, used by the
// simulator's CPU model and by benchmarks.
func (is *Issuer) VerifyDetailed(flow FlowID, sol Solution) (VerifyInfo, error) {
	is.mu.RLock()
	params := is.params
	maxAge := is.maxAge
	maxSkew := is.maxSkew
	now := is.now()
	is.mu.RUnlock()

	var info VerifyInfo
	if sol.Params != params {
		return info, fmt.Errorf("puzzle: solution for %v, server at %v: %w",
			sol.Params, params, ErrParamMismatch)
	}
	issued := time.Unix(int64(sol.Timestamp), 0)
	if age := now.Sub(issued); age > maxAge {
		return info, fmt.Errorf("puzzle: solution age %v exceeds %v: %w", age, maxAge, ErrExpired)
	}
	if ahead := issued.Sub(now); ahead > maxSkew {
		return info, fmt.Errorf("puzzle: timestamp %v ahead of clock: %w", ahead, ErrFutureTimestamp)
	}
	pre := is.preimage(flow, sol.Timestamp, params)
	info.Hashes = 1
	n, err := VerifySolutions(pre, params, sol.Solutions)
	info.Hashes += n
	info.Checked = n
	return info, err
}

// VerifySolutions checks k solutions against a preimage and difficulty. It
// returns the number of solutions hashed before returning (all k on success,
// fewer on the first violation).
func VerifySolutions(preimage []byte, params Params, solutions [][]byte) (checked int, err error) {
	if len(preimage) != params.SolutionBytes() {
		return 0, fmt.Errorf("puzzle: preimage %d bytes, want %d: %w",
			len(preimage), params.SolutionBytes(), ErrWrongLength)
	}
	if len(solutions) != int(params.K) {
		return 0, fmt.Errorf("puzzle: got %d solutions, want %d: %w",
			len(solutions), params.K, ErrWrongCount)
	}
	for i, s := range solutions {
		if len(s) != params.SolutionBytes() {
			return checked, fmt.Errorf("puzzle: solution %d is %d bytes, want %d: %w",
				i+1, len(s), params.SolutionBytes(), ErrWrongLength)
		}
		checked++
		if !solutionValid(preimage, params, uint8(i+1), s) {
			return checked, fmt.Errorf("puzzle: solution %d fails %d-bit check: %w",
				i+1, params.M, ErrBadSolution)
		}
	}
	return checked, nil
}

// solutionValid reports whether the first M bits of h(P || i || s) equal the
// first M bits of P.
func solutionValid(preimage []byte, params Params, index uint8, s []byte) bool {
	digest := solutionDigest(preimage, index, s)
	return leadingBitsEqual(digest[:], preimage, int(params.M))
}

// solutionDigest computes h(P || i || s).
func solutionDigest(preimage []byte, index uint8, s []byte) [sha256.Size]byte {
	buf := make([]byte, 0, len(preimage)+1+len(s))
	buf = append(buf, preimage...)
	buf = append(buf, index)
	buf = append(buf, s...)
	return sha256.Sum256(buf)
}
