package puzzle

import "errors"

var (
	// ErrInvalidParams reports malformed difficulty parameters.
	ErrInvalidParams = errors.New("invalid puzzle parameters")
	// ErrExpired reports that a solution's timestamp fell outside the replay
	// window, i.e. the challenge has expired.
	ErrExpired = errors.New("puzzle challenge expired")
	// ErrFutureTimestamp reports a solution timestamp ahead of the server
	// clock by more than the allowed skew (a replay-forgery attempt).
	ErrFutureTimestamp = errors.New("puzzle timestamp in the future")
	// ErrParamMismatch reports a solution whose parameters differ from the
	// server's current difficulty setting. Because the server is stateless,
	// only solutions for the currently configured difficulty verify.
	ErrParamMismatch = errors.New("puzzle parameter mismatch")
	// ErrBadSolution reports a solution that fails the difficulty check.
	ErrBadSolution = errors.New("puzzle solution invalid")
	// ErrWrongCount reports a solution set whose cardinality is not k.
	ErrWrongCount = errors.New("puzzle solution count mismatch")
	// ErrWrongLength reports a preimage or solution with a length other
	// than l bits.
	ErrWrongLength = errors.New("puzzle field length mismatch")
	// ErrBudgetExhausted reports that a Solver gave up because its hash
	// budget ran out before all k solutions were found.
	ErrBudgetExhausted = errors.New("puzzle solver hash budget exhausted")
)
