package puzzle

import (
	"encoding/binary"
	"fmt"
)

// FlowID is the packet-level data bound into a challenge: the TCP 4-tuple of
// the SYN packet plus the client's initial sequence number. Binding the
// challenge to the flow prevents a solution computed for one connection from
// being replayed on another (paper §5, "Replay attacks").
type FlowID struct {
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
	ISN     uint32
}

// appendBytes appends the canonical byte encoding of the flow to b.
func (f FlowID) appendBytes(b []byte) []byte {
	b = append(b, f.SrcIP[:]...)
	b = append(b, f.DstIP[:]...)
	b = binary.BigEndian.AppendUint16(b, f.SrcPort)
	b = binary.BigEndian.AppendUint16(b, f.DstPort)
	b = binary.BigEndian.AppendUint32(b, f.ISN)
	return b
}

// Reverse returns the flow as seen from the opposite direction, with source
// and destination swapped. The ISN is preserved: the server verifying an ACK
// reconstructs the original SYN's flow, so callers normalize direction with
// Reverse before verification.
func (f FlowID) Reverse() FlowID {
	return FlowID{
		SrcIP:   f.DstIP,
		DstIP:   f.SrcIP,
		SrcPort: f.DstPort,
		DstPort: f.SrcPort,
		ISN:     f.ISN,
	}
}

// String renders the flow as "1.2.3.4:80->5.6.7.8:443#isn".
func (f FlowID) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d->%d.%d.%d.%d:%d#%d",
		f.SrcIP[0], f.SrcIP[1], f.SrcIP[2], f.SrcIP[3], f.SrcPort,
		f.DstIP[0], f.DstIP[1], f.DstIP[2], f.DstIP[3], f.DstPort, f.ISN)
}
