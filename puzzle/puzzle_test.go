package puzzle

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// easyParams keeps unit tests fast: a handful of hashes per solve.
var easyParams = Params{K: 2, M: 4, L: 64}

func testIssuer(t *testing.T, opts ...IssuerOption) *Issuer {
	t.Helper()
	base := []IssuerOption{WithParams(easyParams)}
	is, err := NewIssuer(append(base, opts...)...)
	if err != nil {
		t.Fatalf("NewIssuer: %v", err)
	}
	return is
}

func testFlow() FlowID {
	return FlowID{
		SrcIP:   [4]byte{10, 0, 0, 1},
		DstIP:   [4]byte{10, 0, 0, 2},
		SrcPort: 43210,
		DstPort: 80,
		ISN:     0xdeadbeef,
	}
}

func TestIssueSolveVerifyRoundTrip(t *testing.T) {
	is := testIssuer(t)
	flow := testFlow()
	ch := is.Issue(flow)

	if len(ch.Preimage) != easyParams.SolutionBytes() {
		t.Fatalf("preimage length = %d, want %d", len(ch.Preimage), easyParams.SolutionBytes())
	}
	sol, stats, err := Solve(ch)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if stats.Hashes == 0 {
		t.Error("Solve reported zero hashes")
	}
	if len(sol.Solutions) != int(easyParams.K) {
		t.Fatalf("got %d solutions, want %d", len(sol.Solutions), easyParams.K)
	}
	if err := is.Verify(flow, sol); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyDetailedAccounting(t *testing.T) {
	is := testIssuer(t)
	flow := testFlow()
	sol, _, err := Solve(is.Issue(flow))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	info, err := is.VerifyDetailed(flow, sol)
	if err != nil {
		t.Fatalf("VerifyDetailed: %v", err)
	}
	// One preimage hash plus one hash per solution.
	if want := 1 + int(easyParams.K); info.Hashes != want {
		t.Errorf("Hashes = %d, want %d", info.Hashes, want)
	}
	if info.Checked != int(easyParams.K) {
		t.Errorf("Checked = %d, want %d", info.Checked, easyParams.K)
	}
}

func TestVerifyRejectsWrongFlow(t *testing.T) {
	is := testIssuer(t)
	flow := testFlow()
	sol, _, err := Solve(is.Issue(flow))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	other := flow
	other.SrcPort++
	if err := is.Verify(other, sol); err == nil {
		t.Error("Verify accepted a solution replayed on a different flow")
	}
	other = flow
	other.ISN++
	if err := is.Verify(other, sol); err == nil {
		t.Error("Verify accepted a solution replayed with a different ISN")
	}
	other = flow
	other.SrcIP[3]++
	if err := is.Verify(other, sol); err == nil {
		t.Error("Verify accepted a solution replayed from a different source IP")
	}
}

func TestVerifyRejectsTamperedSolution(t *testing.T) {
	is := testIssuer(t)
	flow := testFlow()
	sol, _, err := Solve(is.Issue(flow))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// With m=4 a single bit flip has a 15/16 chance of invalidating a
	// solution; flip until verification fails or conclude the check is
	// broken after trying every bit of every solution.
	tampered := false
	for si := range sol.Solutions {
		for bit := 0; bit < int(easyParams.L); bit++ {
			mut := cloneSolution(sol)
			mut.Solutions[si][bit/8] ^= 1 << (bit % 8)
			if err := is.Verify(flow, mut); err != nil {
				if !errors.Is(err, ErrBadSolution) {
					t.Fatalf("Verify error = %v, want ErrBadSolution", err)
				}
				tampered = true
			}
		}
	}
	if !tampered {
		t.Error("no single-bit tamper was ever rejected")
	}
}

func cloneSolution(sol Solution) Solution {
	out := sol
	out.Solutions = make([][]byte, len(sol.Solutions))
	for i, s := range sol.Solutions {
		out.Solutions[i] = bytes.Clone(s)
	}
	return out
}

func TestVerifyRejectsWrongCountAndLength(t *testing.T) {
	is := testIssuer(t)
	flow := testFlow()
	sol, _, err := Solve(is.Issue(flow))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}

	short := cloneSolution(sol)
	short.Solutions = short.Solutions[:1]
	if err := is.Verify(flow, short); !errors.Is(err, ErrWrongCount) {
		t.Errorf("Verify(short) error = %v, want ErrWrongCount", err)
	}

	trunc := cloneSolution(sol)
	trunc.Solutions[0] = trunc.Solutions[0][:4]
	if err := is.Verify(flow, trunc); !errors.Is(err, ErrWrongLength) {
		t.Errorf("Verify(trunc) error = %v, want ErrWrongLength", err)
	}
}

func TestVerifyRejectsParamMismatch(t *testing.T) {
	is := testIssuer(t)
	flow := testFlow()
	sol, _, err := Solve(is.Issue(flow))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Retune the server; the old solution must no longer verify.
	if err := is.SetParams(Params{K: 2, M: 5, L: 64}); err != nil {
		t.Fatalf("SetParams: %v", err)
	}
	if err := is.Verify(flow, sol); !errors.Is(err, ErrParamMismatch) {
		t.Errorf("Verify error = %v, want ErrParamMismatch", err)
	}
}

func TestVerifyExpiry(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	is := testIssuer(t, WithClock(clock), WithMaxAge(10*time.Second))
	flow := testFlow()
	sol, _, err := Solve(is.Issue(flow))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}

	now = now.Add(5 * time.Second)
	if err := is.Verify(flow, sol); err != nil {
		t.Fatalf("Verify within window: %v", err)
	}

	now = now.Add(20 * time.Second)
	if err := is.Verify(flow, sol); !errors.Is(err, ErrExpired) {
		t.Errorf("Verify after expiry error = %v, want ErrExpired", err)
	}
}

func TestVerifyFutureTimestamp(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	is := testIssuer(t, WithClock(func() time.Time { return now }), WithMaxSkew(time.Second))
	flow := testFlow()
	ch := is.IssueAt(flow, uint32(now.Unix())+120)
	sol, _, err := Solve(ch)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := is.Verify(flow, sol); !errors.Is(err, ErrFutureTimestamp) {
		t.Errorf("Verify error = %v, want ErrFutureTimestamp", err)
	}
}

func TestDistinctSecretsYieldDistinctPreimages(t *testing.T) {
	a := testIssuer(t)
	b := testIssuer(t)
	flow := testFlow()
	ts := uint32(time.Now().Unix())
	if bytes.Equal(a.IssueAt(flow, ts).Preimage, b.IssueAt(flow, ts).Preimage) {
		t.Error("two issuers with random secrets produced the same preimage")
	}
}

func TestIssueDeterministicForSameInputs(t *testing.T) {
	secret := bytes.Repeat([]byte{0x42}, SecretLen)
	a := testIssuer(t, WithSecret(secret))
	b := testIssuer(t, WithSecret(secret))
	flow := testFlow()
	if !bytes.Equal(a.IssueAt(flow, 7).Preimage, b.IssueAt(flow, 7).Preimage) {
		t.Error("same secret/ts/flow produced different preimages")
	}
	if bytes.Equal(a.IssueAt(flow, 7).Preimage, a.IssueAt(flow, 8).Preimage) {
		t.Error("different timestamps produced identical preimages")
	}
}

func TestSolutionCrossIndexRejected(t *testing.T) {
	// A valid solution for index 1 must not generally verify at index 2:
	// swap the two solutions of a k=2 puzzle and expect rejection for at
	// least one challenge (indices are bound into the digest).
	is := testIssuer(t)
	rejected := false
	for i := 0; i < 8 && !rejected; i++ {
		flow := testFlow()
		flow.ISN = uint32(i)
		sol, _, err := Solve(is.Issue(flow))
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		sol.Solutions[0], sol.Solutions[1] = sol.Solutions[1], sol.Solutions[0]
		if err := is.Verify(flow, sol); err != nil {
			rejected = true
		}
	}
	if !rejected {
		t.Error("swapped solution indices never rejected across 8 challenges")
	}
}

// Property: for random flows and timestamps, issue→solve→verify always
// succeeds under the issuer that created the challenge.
func TestRoundTripProperty(t *testing.T) {
	is := testIssuer(t, WithClock(func() time.Time { return time.Unix(1_700_000_000, 0) }))
	f := func(src, dst [4]byte, sp, dp uint16, isn uint32) bool {
		flow := FlowID{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, ISN: isn}
		sol, _, err := Solve(is.IssueAt(flow, 1_700_000_000))
		if err != nil {
			return false
		}
		return is.Verify(flow, sol) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSolverBudget(t *testing.T) {
	is := testIssuer(t)
	// m=16 requires ~2^16 hashes per solution on average; a budget of 4 is
	// essentially guaranteed to run out.
	if err := is.SetParams(Params{K: 1, M: 16, L: 64}); err != nil {
		t.Fatalf("SetParams: %v", err)
	}
	ch := is.Issue(testFlow())
	sv := Solver{MaxHashes: 4}
	_, stats, err := sv.Solve(context.Background(), ch)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Solve error = %v, want ErrBudgetExhausted", err)
	}
	if stats.Hashes > 4 {
		t.Errorf("Solver spent %d hashes with budget 4", stats.Hashes)
	}
}

func TestSolverCancellation(t *testing.T) {
	is := testIssuer(t)
	if err := is.SetParams(Params{K: 1, M: 60, L: 64}); err != nil {
		t.Fatalf("SetParams: %v", err)
	}
	ch := is.Issue(testFlow())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sv Solver
	if _, _, err := sv.Solve(ctx, ch); !errors.Is(err, context.Canceled) {
		t.Fatalf("Solve error = %v, want context.Canceled", err)
	}
}

func TestSolverRandomStart(t *testing.T) {
	is := testIssuer(t)
	ch := is.Issue(testFlow())
	a := Solver{Rand: rand.New(rand.NewSource(1))}
	b := Solver{Rand: rand.New(rand.NewSource(2))}
	solA, _, err := a.Solve(context.Background(), ch)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	solB, _, err := b.Solve(context.Background(), ch)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := is.Verify(testFlow(), solA); err != nil {
		t.Errorf("Verify(a): %v", err)
	}
	if err := is.Verify(testFlow(), solB); err != nil {
		t.Errorf("Verify(b): %v", err)
	}
}

func TestSampleSolveHashesMean(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	p := Params{K: 2, M: 8, L: 64}
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(SampleSolveHashes(rnd, p))
	}
	mean := sum / n
	// Geometric mean is k·2^m = 512; the paper's scan-from-zero model is
	// k·2^(m-1). Accept the geometric expectation within 5%.
	want := float64(p.K) * 256
	if mean < want*0.95 || mean > want*1.05 {
		t.Errorf("sample mean = %.1f, want ≈ %.1f", mean, want)
	}
}

func TestFlowReverse(t *testing.T) {
	f := testFlow()
	r := f.Reverse()
	if r.SrcIP != f.DstIP || r.DstIP != f.SrcIP || r.SrcPort != f.DstPort ||
		r.DstPort != f.SrcPort || r.ISN != f.ISN {
		t.Errorf("Reverse() = %v", r)
	}
	if rr := r.Reverse(); rr != f {
		t.Errorf("double Reverse() = %v, want %v", rr, f)
	}
}
