package puzzle

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		params  Params
		wantErr bool
	}{
		{name: "default", params: DefaultParams(), wantErr: false},
		{name: "minimal", params: Params{K: 1, M: 1, L: 8}, wantErr: false},
		{name: "max difficulty", params: Params{K: 4, M: 64, L: 64}, wantErr: false},
		{name: "zero k", params: Params{K: 0, M: 8, L: 64}, wantErr: true},
		{name: "zero m", params: Params{K: 1, M: 0, L: 64}, wantErr: true},
		{name: "m exceeds l", params: Params{K: 1, M: 72, L: 64}, wantErr: true},
		{name: "l not byte aligned", params: Params{K: 1, M: 8, L: 63}, wantErr: true},
		{name: "l too small", params: Params{K: 1, M: 1, L: 0}, wantErr: true},
		{name: "l too large", params: Params{K: 1, M: 8, L: 255}, wantErr: true},
		{name: "m above cap", params: Params{K: 1, M: 65, L: 248}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.params.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate(%v) error = %v, wantErr %v", tt.params, err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrInvalidParams) {
				t.Fatalf("Validate(%v) error %v does not wrap ErrInvalidParams", tt.params, err)
			}
		})
	}
}

func TestParamsExpectedSolveHashes(t *testing.T) {
	tests := []struct {
		params Params
		want   float64
	}{
		{Params{K: 1, M: 1, L: 64}, 1},
		{Params{K: 1, M: 8, L: 64}, 128},
		{Params{K: 2, M: 17, L: 64}, 131072},
		{Params{K: 4, M: 20, L: 64}, 4 * 524288},
	}
	for _, tt := range tests {
		if got := tt.params.ExpectedSolveHashes(); got != tt.want {
			t.Errorf("%v.ExpectedSolveHashes() = %v, want %v", tt.params, got, tt.want)
		}
	}
}

func TestParamsExpectedVerifyHashes(t *testing.T) {
	if got := (Params{K: 2, M: 17, L: 64}).ExpectedVerifyHashes(); got != 2 {
		t.Errorf("ExpectedVerifyHashes() = %v, want 2", got)
	}
	if got := (Params{K: 4, M: 8, L: 64}).ExpectedVerifyHashes(); got != 3 {
		t.Errorf("ExpectedVerifyHashes() = %v, want 3", got)
	}
}

func TestParamsGuessProbability(t *testing.T) {
	p := Params{K: 2, M: 8, L: 64}
	want := math.Exp2(-16)
	if got := p.GuessProbability(); math.Abs(got-want) > 1e-18 {
		t.Errorf("GuessProbability() = %v, want %v", got, want)
	}
}

func TestParamsSolutionBytes(t *testing.T) {
	if got := (Params{K: 1, M: 4, L: 64}).SolutionBytes(); got != 8 {
		t.Errorf("SolutionBytes() = %d, want 8", got)
	}
	if got := (Params{K: 1, M: 4, L: 128}).SolutionBytes(); got != 16 {
		t.Errorf("SolutionBytes() = %d, want 16", got)
	}
}

func TestParamsStringFormat(t *testing.T) {
	if got, want := DefaultParams().String(), "(k=2,m=17,l=64)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: solve-hash expectation scales linearly in k and exponentially
// in m.
func TestParamsWorkMonotonicity(t *testing.T) {
	f := func(k uint8, m uint8) bool {
		k = k%4 + 1
		m = m%32 + 1
		base := Params{K: k, M: m, L: 64}
		moreK := Params{K: k + 1, M: m, L: 64}
		moreM := Params{K: k, M: m + 1, L: 64}
		return moreK.ExpectedSolveHashes() > base.ExpectedSolveHashes() &&
			moreM.ExpectedSolveHashes() == 2*base.ExpectedSolveHashes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
