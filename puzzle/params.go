package puzzle

import (
	"fmt"
	"math"
)

const (
	// MinDifficultyBits is the smallest accepted per-solution difficulty.
	MinDifficultyBits = 1
	// MaxDifficultyBits is the largest accepted per-solution difficulty.
	// Difficulties beyond 64 bits are far outside any practical operating
	// point (2^63 hashes per solution) and would overflow work estimates.
	MaxDifficultyBits = 64
	// MinPreimageBits is the smallest accepted preimage/solution length.
	MinPreimageBits = 8
	// MaxPreimageBits is the largest accepted preimage/solution length. The
	// wire format (package tcpopt) encodes the length in one byte of bits,
	// and the preimage is a SHA-256 prefix, so 248 bits (31 bytes) keeps the
	// whole option block within the TCP option space.
	MaxPreimageBits = 248
	// DefaultPreimageBits is the default preimage and solution length.
	DefaultPreimageBits = 64
)

// Params describes a puzzle difficulty setting, the tuple (k, m) of the
// paper plus the preimage/solution bit length l.
type Params struct {
	// K is the number of solutions the client must produce (k in the paper).
	K uint8
	// M is the number of difficulty bits per solution (m in the paper).
	M uint8
	// L is the preimage and per-solution length in bits. It must be a
	// multiple of 8 and at least M.
	L uint8
}

// DefaultParams returns the paper's Nash-equilibrium example difficulty,
// (k, m) = (2, 17) ... except m must fit the preimage; the worked example in
// §4.4 uses m = 17 with l = 64.
func DefaultParams() Params {
	return Params{K: 2, M: 17, L: DefaultPreimageBits}
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	switch {
	case p.K == 0:
		return fmt.Errorf("puzzle: k must be positive: %w", ErrInvalidParams)
	case p.M < MinDifficultyBits || int(p.M) > MaxDifficultyBits:
		return fmt.Errorf("puzzle: m=%d outside [%d,%d]: %w",
			p.M, MinDifficultyBits, MaxDifficultyBits, ErrInvalidParams)
	case p.L < MinPreimageBits || int(p.L) > MaxPreimageBits:
		return fmt.Errorf("puzzle: l=%d outside [%d,%d]: %w",
			p.L, MinPreimageBits, MaxPreimageBits, ErrInvalidParams)
	case p.L%8 != 0:
		return fmt.Errorf("puzzle: l=%d not a multiple of 8: %w", p.L, ErrInvalidParams)
	case p.M > p.L:
		return fmt.Errorf("puzzle: m=%d exceeds preimage length l=%d: %w",
			p.M, p.L, ErrInvalidParams)
	}
	return nil
}

// SolutionBytes returns the length in bytes of the preimage and of each
// solution.
func (p Params) SolutionBytes() int { return int(p.L) / 8 }

// ExpectedSolveHashes returns the expected number of hash operations a
// client performs to solve a puzzle with these parameters, ℓ(p) = k·2^(m-1)
// (paper §4.1).
func (p Params) ExpectedSolveHashes() float64 {
	return float64(p.K) * math.Exp2(float64(p.M)-1)
}

// ExpectedVerifyHashes returns the expected number of hash operations the
// server performs to verify a solution, d(p) = 1 + k/2 (paper §4).
func (p Params) ExpectedVerifyHashes() float64 {
	return 1 + float64(p.K)/2
}

// GenerateHashes returns the number of hash operations the server performs
// to generate a challenge, g(p) = 1.
func (p Params) GenerateHashes() float64 { return 1 }

// GuessProbability returns the probability that an adversary guesses a full
// solution set blindly: 2^(-k·m).
func (p Params) GuessProbability() float64 {
	return math.Exp2(-float64(p.K) * float64(p.M))
}

// String renders the parameters as "(k=2,m=17,l=64)".
func (p Params) String() string {
	return fmt.Sprintf("(k=%d,m=%d,l=%d)", p.K, p.M, p.L)
}
