package attack

import (
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// solutionFlood sends ACKs carrying structurally valid but worthless
// solutions to burn server verification cycles (§7).
type solutionFlood struct{}

var solutionFloodInfo = Info{
	Name:    sweep.AttackSolutionFlood,
	Summary: "bogus-solution ACK flood burning server verification cycles (§7)",
}

func init() {
	Register(solutionFloodInfo, func(BotCtx) (Strategy, error) { return solutionFlood{}, nil })
}

// Describe implements Strategy.
func (solutionFlood) Describe() Info { return solutionFloodInfo }

// Tick implements Strategy: fabricate an ACK carrying a structurally valid
// but worthless solution block, maximising server verification work.
func (solutionFlood) Tick(ctx BotCtx) {
	rnd := ctx.Rand()
	sol := fabricateSolution(rnd, paramsGuess())
	opts, err := encodeSolutionOptions(sol)
	if err != nil {
		return
	}
	ctx.EmitAttack(tcpkit.Segment{
		Src: ctx.Addr(), Dst: ctx.ServerAddr(),
		SrcPort: uint16(1024 + rnd.Intn(60000)), DstPort: ctx.ServerPort(),
		Seq: rnd.Uint32(), Ack: rnd.Uint32(),
		Flags:   tcpkit.FlagACK,
		Options: opts,
	})
}

// OnSynAck implements Strategy: the flooder opens no handshakes.
func (solutionFlood) OnSynAck(BotCtx, SynAck) {}
