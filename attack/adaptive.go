package attack

import (
	"github.com/tcppuzzles/tcppuzzles/game"
	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// Replicator schedule: shares update every adaptiveEpochTicks attack
// actions from the arm payoffs observed during the epoch, with an
// exploration floor so a temporarily starved arm can recover. Epochs are
// counted in the bot's own ticks (never wall time or global metrics), so
// the dynamics are a pure function of the bot's local observation stream —
// the property that keeps adaptation byte-deterministic under sharded and
// macro-aggregated execution.
const (
	// AdaptiveEpochTicks is the replicator epoch length in attack actions.
	AdaptiveEpochTicks = 32
	// AdaptiveExplorationFloor is the minimum share every arm keeps; the
	// replicator fixed point for a strictly dominant arm is therefore
	// 1 − (arms−1)·floor, which is what the arms-race driver measures
	// convergence distance against.
	AdaptiveExplorationFloor = 0.02
	// Arm payoffs per routed SYN-ACK: an unchallenged handshake is a full
	// win (the accept queue takes the hit for free), a challenge means the
	// defense deflected the action onto the bot's CPU.
	rewardUnchallenged = 1.0
	rewardChallenged   = 0.25
)

// AdaptiveFlood reallocates one bot's budget across the basic flood
// behaviours — spoofed SYN flood, connection flood, pulse flood — by
// discrete replicator dynamics (game.ReplicatorStep). Each Tick draws one
// arm from the current share vector and delegates to that arm's behaviour;
// feedback is attributed per arm by intercepting handshake registration,
// so a SYN-ACK routed back to the bot credits exactly the arm that opened
// the handshake.
//
// Spoofed arms never receive feedback (replies to forged sources do not
// route back), so their observable payoff is zero: whenever a real-address
// arm earns any reward the spoofed shares decay toward the exploration
// floor, and when nothing earns feedback the shares hold still. The
// solution/replay floods are deliberately not arms: their fabrication path
// draws bulk bytes via rand.Read, which the macro fleet's compact
// per-source streams do not reproduce draw for draw.
type AdaptiveFlood struct {
	arms      []Strategy
	names     []sweep.Attack
	shares    []float64
	actions   []float64
	rewards   []float64
	armByPort map[uint16]int
	ticks     int
	trace     [][]float64
}

var adaptiveFloodInfo = Info{
	Name:        sweep.AttackAdaptiveFlood,
	Summary:     "replicator dynamics reallocating budget across syn/conn/pulse floods",
	Fingerprint: "adaptive-flood/v1 arms=syn,conn,pulse epoch=32t floor=0.02 reward=1.0/0.25",
}

func init() {
	// The factory must not draw from the bot's RNG: per-bot cores
	// instantiate strategies before the start-jitter draw while the macro
	// fleet instantiates lazily after it, and any factory draw would
	// desynchronise the two streams.
	Register(adaptiveFloodInfo, func(BotCtx) (Strategy, error) { return NewAdaptiveFlood(), nil })
}

// NewAdaptiveFlood returns a fresh learner with uniform shares.
func NewAdaptiveFlood() *AdaptiveFlood {
	arms := []Strategy{synFlood{}, connFlood{}, pulseFlood{}}
	names := []sweep.Attack{sweep.AttackSYNFlood, sweep.AttackConnFlood, sweep.AttackPulseFlood}
	return &AdaptiveFlood{
		arms:      arms,
		names:     names,
		shares:    game.UniformShares(len(arms)),
		actions:   make([]float64, len(arms)),
		rewards:   make([]float64, len(arms)),
		armByPort: map[uint16]int{},
	}
}

// Describe implements Strategy.
func (*AdaptiveFlood) Describe() Info { return adaptiveFloodInfo }

// Tick implements Strategy: close the epoch if due, then draw an arm from
// the current shares (exactly one RNG draw before delegation, in both
// per-bot and macro execution) and fire its action.
func (f *AdaptiveFlood) Tick(ctx BotCtx) {
	if f.ticks > 0 && f.ticks%AdaptiveEpochTicks == 0 {
		f.closeEpoch()
	}
	f.ticks++
	arm := f.pick(ctx.Rand().Float64())
	f.actions[arm]++
	f.arms[arm].Tick(armCtx{BotCtx: ctx, flood: f, arm: arm})
}

// OnSynAck implements Strategy: credit the arm that opened the handshake,
// then let that arm's own completion logic run.
func (f *AdaptiveFlood) OnSynAck(ctx BotCtx, sa SynAck) {
	arm, ok := f.armByPort[sa.Port]
	if !ok {
		return
	}
	delete(f.armByPort, sa.Port)
	if sa.Challenged {
		f.rewards[arm] += rewardChallenged
	} else {
		f.rewards[arm] += rewardUnchallenged
	}
	f.arms[arm].OnSynAck(ctx, sa)
}

// pick maps one uniform draw to an arm index by walking the share CDF.
func (f *AdaptiveFlood) pick(u float64) int {
	var cum float64
	for i, s := range f.shares {
		cum += s
		if u < cum {
			return i
		}
	}
	return len(f.shares) - 1
}

// closeEpoch converts the epoch's per-arm reward rates into one replicator
// step and records the new share vector on the trace.
func (f *AdaptiveFlood) closeEpoch() {
	payoffs := make([]float64, len(f.arms))
	for i := range payoffs {
		if f.actions[i] > 0 {
			payoffs[i] = f.rewards[i] / f.actions[i]
		}
	}
	next, err := game.ReplicatorStep(f.shares, payoffs, AdaptiveExplorationFloor)
	if err == nil {
		f.shares = next
	}
	for i := range f.actions {
		f.actions[i], f.rewards[i] = 0, 0
	}
	f.trace = append(f.trace, append([]float64(nil), f.shares...))
}

// ArmNames lists the flood kinds the learner allocates across, index
// aligned with Shares and ShareTrace rows.
func (f *AdaptiveFlood) ArmNames() []sweep.Attack {
	return append([]sweep.Attack(nil), f.names...)
}

// Shares returns a copy of the current budget-share vector.
func (f *AdaptiveFlood) Shares() []float64 {
	return append([]float64(nil), f.shares...)
}

// ShareTrace returns the share vector recorded after every replicator
// epoch, oldest first.
func (f *AdaptiveFlood) ShareTrace() [][]float64 {
	out := make([][]float64, len(f.trace))
	for i, row := range f.trace {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// armCtx attributes handshake registration to the arm whose action is in
// flight, so the SYN-ACK (or its absence) scores the right strategy.
type armCtx struct {
	BotCtx
	flood *AdaptiveFlood
	arm   int
}

// ExpectSynAck records which arm opened the handshake before registering
// it with the bot core.
func (c armCtx) ExpectSynAck(port uint16, isn uint32) {
	c.flood.armByPort[port] = c.arm
	c.BotCtx.ExpectSynAck(port, isn)
}
