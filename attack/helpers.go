package attack

import (
	"math/rand"

	"github.com/tcppuzzles/tcppuzzles/internal/pzengine"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// This file holds the reusable attack actions the built-in strategies
// compose — real and spoofed SYNs, challenge solving, solution
// fabrication — written purely against BotCtx so third-party strategies
// can mix them the same way the paper floods do.

// sendRealSYN opens a handshake from the bot's own address and registers
// it so the SYN-ACK routes back to the strategy.
func sendRealSYN(ctx BotCtx) {
	port := ctx.NextPort()
	isn := ctx.NextISN()
	ctx.ExpectSynAck(port, isn)
	ctx.EmitAttack(tcpkit.Segment{
		Src: ctx.Addr(), Dst: ctx.ServerAddr(),
		SrcPort: port, DstPort: ctx.ServerPort(),
		Seq: isn, Flags: tcpkit.FlagSYN, Window: 65535,
	})
}

// sendSpoofedSYN emits a SYN with a random forged source.
func sendSpoofedSYN(ctx BotCtx) {
	rnd := ctx.Rand()
	src := [4]byte{100, byte(rnd.Intn(256)), byte(rnd.Intn(256)), byte(1 + rnd.Intn(254))}
	ctx.EmitSpoofed(tcpkit.Segment{
		Src: src, Dst: ctx.ServerAddr(),
		SrcPort: uint16(1024 + rnd.Intn(60000)), DstPort: ctx.ServerPort(),
		Seq: rnd.Uint32(), Flags: tcpkit.FlagSYN, Window: 65535,
	})
}

// sampleSolveHashes draws the brute-force cost of one challenge.
func sampleSolveHashes(ctx BotCtx, blk tcpopt.ChallengeBlock) uint64 {
	return puzzle.SampleSolveHashes(ctx.Rand(), blk.Challenge.Params)
}

// solveChallenge produces the solution for a challenge: canonical
// simulated bits when the deployment runs the simulated engine, genuine
// brute force otherwise. The caller charges sampleSolveHashes to the CPU.
func solveChallenge(ctx BotCtx, blk tcpopt.ChallengeBlock) puzzle.Solution {
	if ctx.SimulatedCrypto() {
		return pzengine.SimSolution(blk.Challenge)
	}
	s, _, err := puzzle.Solve(blk.Challenge)
	if err != nil {
		return puzzle.Solution{Params: blk.Challenge.Params, Timestamp: blk.Challenge.Timestamp}
	}
	return s
}

// encodeSolutionOptions marshals a solved challenge into ACK options.
func encodeSolutionOptions(sol puzzle.Solution) ([]byte, error) {
	opt, err := tcpopt.EncodeSolution(tcpopt.SolutionBlock{
		MSS: 1460, WScale: 7, HasTimestamp: true, Solution: sol,
	})
	if err != nil {
		return nil, err
	}
	return tcpopt.MarshalOptions([]tcpopt.Option{opt})
}

// paramsGuess is the difficulty a solution flooder fabricates blocks
// for. A real attacker reads it from an observed challenge; the guess
// matters only for block sizing, and the paper's default is used.
func paramsGuess() puzzle.Params {
	return puzzle.Params{K: 2, M: 17, L: 32}
}

// fabricateSolution fills a solution with random bytes.
func fabricateSolution(rnd *rand.Rand, p puzzle.Params) puzzle.Solution {
	sol := puzzle.Solution{
		Params:    p,
		Timestamp: uint32(rnd.Int63()),
		Solutions: make([][]byte, p.K),
	}
	for i := range sol.Solutions {
		b := make([]byte, p.SolutionBytes())
		rnd.Read(b)
		sol.Solutions[i] = b
	}
	return sol
}
