package attack

import (
	"strings"
	"testing"

	"github.com/tcppuzzles/tcppuzzles/sweep"
)

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestRegisterRejectsBadRegistrations(t *testing.T) {
	dummy := func(BotCtx) (Strategy, error) { return synFlood{}, nil }
	mustPanic(t, "duplicate name", func() {
		Register(Info{Name: sweep.AttackSYNFlood, Summary: "dup"}, dummy)
	})
	mustPanic(t, "empty name", func() {
		Register(Info{Summary: "anonymous"}, dummy)
	})
	mustPanic(t, "nil factory", func() {
		Register(Info{Name: "test-nil-factory"}, nil)
	})
}

func TestNewUnknownAttackErrors(t *testing.T) {
	_, err := New("tsunami", nil)
	if err == nil {
		t.Fatal("unknown attack instantiated")
	}
	if !strings.Contains(err.Error(), "tsunami") {
		t.Errorf("error does not name the unknown attack: %v", err)
	}
	if !strings.Contains(err.Error(), string(sweep.AttackConnFlood)) {
		t.Errorf("error does not list registered attacks: %v", err)
	}
}

// TestRegistryCompleteness is the CI contract: every sweep.Attack enum
// value resolves to a registered plugin and vice versa.
func TestRegistryCompleteness(t *testing.T) {
	known := map[sweep.Attack]bool{}
	for _, name := range sweep.KnownAttacks() {
		known[name] = true
		info, ok := Lookup(name)
		if !ok {
			t.Errorf("sweep attack %q has no registered plugin", name)
			continue
		}
		if info.Name != name {
			t.Errorf("plugin for %q registered as %q", name, info.Name)
		}
		if info.Summary == "" {
			t.Errorf("plugin %q has no summary", name)
		}
	}
	for _, info := range Infos() {
		if !known[info.Name] {
			t.Errorf("registered attack %q is not a sweep.KnownAttacks value", info.Name)
		}
	}
}

// TestFingerprintContract pins the cache-identity rule for attacks: the
// paper's four floods carry no fingerprint, new plugins do.
func TestFingerprintContract(t *testing.T) {
	legacy := []sweep.Attack{
		sweep.AttackSYNFlood, sweep.AttackConnFlood,
		sweep.AttackSolutionFlood, sweep.AttackReplayFlood,
	}
	for _, name := range legacy {
		info, _ := Lookup(name)
		if info.Fingerprint != "" {
			t.Errorf("legacy attack %q has fingerprint %q; must be empty to keep old cache hashes", name, info.Fingerprint)
		}
	}
	info, _ := Lookup(sweep.AttackPulseFlood)
	if info.Fingerprint == "" {
		t.Error("pulseflood has no fingerprint; it needs its own cache identity")
	}
	if fp := sweep.AttackFingerprint(sweep.AttackPulseFlood); fp != info.Fingerprint {
		t.Errorf("sweep fingerprint = %q, registry says %q", fp, info.Fingerprint)
	}
}
