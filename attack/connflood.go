package attack

import (
	"github.com/tcppuzzles/tcppuzzles/sweep"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// connFlood completes handshakes from the bot's real address and then
// idles (nping-style), targeting the accept queue and worker pool.
// Whether challenges are genuinely solved depends on the bot's Solves
// configuration; an unpatched bot answers challenges with plain ACKs the
// protected server ignores.
type connFlood struct{}

var connFloodInfo = Info{
	Name:    sweep.AttackConnFlood,
	Summary: "real-address connection flood targeting the accept queue (nping)",
}

func init() {
	Register(connFloodInfo, func(BotCtx) (Strategy, error) { return connFlood{}, nil })
}

// Describe implements Strategy.
func (connFlood) Describe() Info { return connFloodInfo }

// Tick implements Strategy.
func (connFlood) Tick(ctx BotCtx) { sendRealSYN(ctx) }

// OnSynAck implements Strategy: the connection-flood completion logic.
func (connFlood) OnSynAck(ctx BotCtx, sa SynAck) {
	if !sa.Challenged || !ctx.Solves() {
		// Unchallenged handshake, or an unpatched bot: plain ACK (which a
		// challenging server ignores). The bot still believes the
		// connection opened (nping semantics).
		ctx.SendHandshakeAck(sa.Port, sa.ISN, sa.ServerISN, nil)
		return
	}
	solveAndAck(ctx, sa)
}

// solveAndAck runs the patched-kernel path: honour the bot's solve-backlog
// bound, charge the brute force to the CPU model, and complete the
// handshake with the solution once the CPU gets there.
func solveAndAck(ctx BotCtx, sa SynAck) {
	blk, err := tcpopt.ParseChallenge(sa.Challenge)
	if err != nil {
		return
	}
	if ctx.MaxSolveBacklog() > 0 && ctx.CPUBacklog() > ctx.MaxSolveBacklog() {
		ctx.Metrics().ChallengesDiscarded++
		return
	}
	hashes := sampleSolveHashes(ctx, blk)
	done := ctx.ChargeCPU(float64(hashes))
	ctx.ScheduleAt(done, func() {
		ctx.Metrics().SolvesCompleted++
		sol := solveChallenge(ctx, blk)
		raw, err := encodeSolutionOptions(sol)
		if err != nil {
			return
		}
		ctx.SendHandshakeAck(sa.Port, sa.ISN, sa.ServerISN, raw)
	})
}
