// Package attack is the flood-strategy plugin API: the attacker half of
// the open registry behind the paper's comparison surface. A Strategy
// drives one bot through two hooks — Tick fires one attack action at the
// configured rate, OnSynAck reacts to a SYN-ACK matching one of the bot's
// own handshakes — against a narrow BotCtx facade over the bot simulator
// (deterministic RNG, CPU model, handshake bookkeeping, send primitives
// with attack-rate accounting).
//
// The paper's four flood behaviours — spoofed SYN floods, connection
// floods, solution floods, and replay floods — are ordinary plugins here,
// registered under the sweep.Attack names the DOE layer sweeps, and new
// behaviours (see pulseflood.go) register the same way without touching
// the simulator core. Info.Fingerprint follows the same cache-identity
// contract as package defense: empty for the paper floods, versioned for
// new plugins.
package attack

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/tcppuzzles/tcppuzzles/internal/stats"
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/sweep"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// Metrics collects bot-side measurements, shared between the bot core and
// its strategy.
type Metrics struct {
	// Sent counts attack packets per bucket — the "measured attack rate"
	// of Figs. 13/14 once CPU limiting is applied.
	Sent *stats.Series
	// AcksSent counts handshake completions attempted.
	AcksSent *stats.Series
	// BelievedEstablished counts connections the bot considers open.
	BelievedEstablished uint64
	// SolvesCompleted counts challenges solved.
	SolvesCompleted uint64
	// ChallengesDiscarded counts challenges dropped due to CPU backlog.
	ChallengesDiscarded uint64
	// RSTsReceived counts deception reveals.
	RSTsReceived uint64
}

// NewMetrics returns empty Metrics with the given bucket width.
func NewMetrics(bucket time.Duration) *Metrics {
	return &Metrics{
		Sent:     stats.NewSeries(bucket),
		AcksSent: stats.NewSeries(bucket),
	}
}

// BotCtx is the narrow facade a Strategy sees of one attacking machine.
type BotCtx interface {
	// Now is the bot's event-engine clock.
	Now() time.Duration
	// Rand is the bot's deterministic RNG.
	Rand() *rand.Rand

	// Addr is the bot's real address; ServerAddr/ServerPort locate the
	// victim.
	Addr() [4]byte
	ServerAddr() [4]byte
	ServerPort() uint16
	// AttackWindow is the configured [start, stop) interval.
	AttackWindow() (start, stop time.Duration)
	// Solves reports whether the bot runs the patched kernel and genuinely
	// solves challenges.
	Solves() bool
	// SimulatedCrypto pairs with the server's simulated puzzle engine.
	SimulatedCrypto() bool
	// MaxSolveBacklog is the "smart" solver's freshness bound (zero =
	// greedy).
	MaxSolveBacklog() time.Duration

	// NextISN mints the next client initial sequence number.
	NextISN() uint32
	// NextPort allocates the next ephemeral source port.
	NextPort() uint16
	// ExpectSynAck registers an in-flight handshake so the matching
	// SYN-ACK is routed back to the strategy's OnSynAck.
	ExpectSynAck(port uint16, isn uint32)

	// EmitAttack accounts one attack packet (Sent) and transmits it from
	// the bot's own address.
	EmitAttack(seg tcpkit.Segment)
	// EmitSpoofed accounts one attack packet and transmits it through the
	// bot's uplink with a forged source — the spoofing primitive.
	EmitSpoofed(seg tcpkit.Segment)
	// SendHandshakeAck completes (or pretends to complete) a handshake:
	// accounts AcksSent and BelievedEstablished, then transmits the ACK.
	SendHandshakeAck(port uint16, isn, serverISN uint32, opts []byte)

	// ChargeCPU runs hash work on the bot CPU model and returns the
	// absolute completion time.
	ChargeCPU(hashes float64) time.Duration
	// CPUBacklog reports how far into the future the CPU is committed.
	CPUBacklog() time.Duration
	// ScheduleAt queues fn at an absolute simulation time.
	ScheduleAt(at time.Duration, fn func())

	// Metrics is the bot's measurement state.
	Metrics() *Metrics
}

// SynAck describes a SYN-ACK that matched one of the bot's own in-flight
// handshakes (registered via ExpectSynAck).
type SynAck struct {
	// Port is the bot-local source port of the handshake.
	Port uint16
	// ISN is the bot's client ISN; ServerISN the server's.
	ISN       uint32
	ServerISN uint32
	// Challenge is the puzzle challenge option when Challenged.
	Challenge  tcpopt.Option
	Challenged bool
}

// Info identifies a registered attack.
type Info struct {
	// Name is the sweep.Attack key the plugin registers under.
	Name sweep.Attack
	// Summary is a one-line description for listings.
	Summary string
	// Fingerprint, when non-empty, feeds the result-cache hash of every
	// cell using this attack (see the defense package for the contract).
	Fingerprint string
}

// Strategy is one bot behaviour. Implementations must be deterministic:
// everything they do may derive only from the BotCtx and their own state.
type Strategy interface {
	// Describe returns the plugin's registration identity.
	Describe() Info
	// Tick fires one attack action; the bot core calls it at the
	// configured rate over the attack window.
	Tick(ctx BotCtx)
	// OnSynAck reacts to a SYN-ACK matching a registered handshake.
	OnSynAck(ctx BotCtx, sa SynAck)
}

// Factory builds a strategy instance for one bot.
type Factory func(ctx BotCtx) (Strategy, error)

var (
	regMu    sync.RWMutex
	registry = map[sweep.Attack]registration{}
)

type registration struct {
	info    Info
	factory Factory
}

// Register adds an attack plugin to the registry under info.Name and
// records its cache fingerprint with the sweep layer. It panics on an
// empty name, a nil factory, or a duplicate registration.
func Register(info Info, factory Factory) {
	if info.Name == "" {
		panic("attack: Register with empty name")
	}
	if factory == nil {
		panic(fmt.Sprintf("attack: Register(%q) with nil factory", info.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("attack: duplicate registration of %q", info.Name))
	}
	registry[info.Name] = registration{info: info, factory: factory}
	sweep.RegisterAttackFingerprint(info.Name, info.Fingerprint)
}

// New instantiates the named attack for a bot. Unknown names error with
// the registered alternatives.
func New(name sweep.Attack, ctx BotCtx) (Strategy, error) {
	regMu.RLock()
	reg, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("attack: unknown attack %q (registered: %s)",
			name, strings.Join(nameStrings(), ", "))
	}
	s, err := reg.factory(ctx)
	if err != nil {
		return nil, fmt.Errorf("attack: %q: %w", name, err)
	}
	return s, nil
}

// Lookup returns the registration info for a name.
func Lookup(name sweep.Attack) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	reg, ok := registry[name]
	return reg.info, ok
}

// Infos lists every registered attack, sorted by name.
func Infos() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(registry))
	for _, reg := range registry {
		out = append(out, reg.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names lists every registered attack name, sorted.
func Names() []sweep.Attack {
	infos := Infos()
	out := make([]sweep.Attack, len(infos))
	for i, info := range infos {
		out[i] = info.Name
	}
	return out
}

func nameStrings() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, string(name))
	}
	sort.Strings(out)
	return out
}
