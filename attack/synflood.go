package attack

import "github.com/tcppuzzles/tcppuzzles/sweep"

// synFlood sends spoofed SYNs (hping3-style) and never completes
// handshakes, targeting the listen queue.
type synFlood struct{}

var synFloodInfo = Info{
	Name:    sweep.AttackSYNFlood,
	Summary: "spoofed SYN flood targeting the listen queue (hping3)",
}

func init() {
	Register(synFloodInfo, func(BotCtx) (Strategy, error) { return synFlood{}, nil })
}

// Describe implements Strategy.
func (synFlood) Describe() Info { return synFloodInfo }

// Tick implements Strategy.
func (synFlood) Tick(ctx BotCtx) { sendSpoofedSYN(ctx) }

// OnSynAck implements Strategy: replies to spoofed sources never route
// back, so there is nothing to react to.
func (synFlood) OnSynAck(BotCtx, SynAck) {}
