package attack

import (
	"github.com/tcppuzzles/tcppuzzles/internal/tcpkit"
	"github.com/tcppuzzles/tcppuzzles/sweep"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

// replayFlood solves one challenge legitimately, captures its own solution
// ACK, and replays the identical packet at the attack rate (§7 "Replay
// attacks"). Flow binding limits it to one queue slot at a time and the
// timestamp window eventually expires the solution.
type replayFlood struct {
	captured    *tcpkit.Segment
	capturePend bool
}

var replayFloodInfo = Info{
	Name:    sweep.AttackReplayFlood,
	Summary: "captures one solved ACK and replays it at the attack rate (§7)",
}

func init() {
	Register(replayFloodInfo, func(BotCtx) (Strategy, error) { return &replayFlood{}, nil })
}

// Describe implements Strategy.
func (*replayFlood) Describe() Info { return replayFloodInfo }

// Tick implements Strategy: re-send the captured solution ACK; until one
// is captured, run a single legitimate solving handshake to obtain it.
func (r *replayFlood) Tick(ctx BotCtx) {
	if r.captured != nil {
		ctx.EmitAttack(*r.captured)
		return
	}
	if r.capturePend {
		return // capture handshake already in flight
	}
	r.capturePend = true
	sendRealSYN(ctx)
}

// OnSynAck implements Strategy: the capture handshake always solves,
// whatever the bot's Solves configuration says.
func (r *replayFlood) OnSynAck(ctx BotCtx, sa SynAck) {
	if !sa.Challenged {
		// Unprotected server: nothing worth capturing; behave like a
		// plain completion and stall (the replay needs a solution).
		ctx.SendHandshakeAck(sa.Port, sa.ISN, sa.ServerISN, nil)
		return
	}
	blk, err := tcpopt.ParseChallenge(sa.Challenge)
	if err != nil {
		r.capturePend = false
		return
	}
	hashes := sampleSolveHashes(ctx, blk)
	done := ctx.ChargeCPU(float64(hashes))
	ctx.ScheduleAt(done, func() {
		ctx.Metrics().SolvesCompleted++
		sol := solveChallenge(ctx, blk)
		raw, err := encodeSolutionOptions(sol)
		if err != nil {
			r.capturePend = false
			return
		}
		seg := tcpkit.Segment{
			Src: ctx.Addr(), Dst: ctx.ServerAddr(),
			SrcPort: sa.Port, DstPort: ctx.ServerPort(),
			Seq: sa.ISN + 1, Ack: sa.ServerISN + 1,
			Flags:   tcpkit.FlagACK,
			Options: raw,
		}
		r.captured = &seg
		ctx.EmitAttack(seg)
	})
}
