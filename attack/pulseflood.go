package attack

import (
	"time"

	"github.com/tcppuzzles/tcppuzzles/sweep"
)

// Pulse shape: a square wave over the attack window. One quarter duty
// cycle at a period near the defenses' release windows probes the
// engage/latch/release dynamics instead of applying constant pressure —
// an attacker trying to ride the controller's hysteresis.
const (
	pulsePeriod = 16 * time.Second
	pulseOn     = 4 * time.Second
)

// pulseFlood is a spoofed SYN flood fired in on/off bursts. During the
// "on" quarter of each period it behaves exactly like synflood; during
// the "off" phase the bot stays silent (ticks continue but emit nothing,
// so the measured attack rate shows the bursts).
type pulseFlood struct{}

var pulseFloodInfo = Info{
	Name:        sweep.AttackPulseFlood,
	Summary:     "spoofed SYN flood in on/off bursts probing the overload latch",
	Fingerprint: "pulseflood/v1 period=16s on=4s",
}

func init() {
	Register(pulseFloodInfo, func(BotCtx) (Strategy, error) { return pulseFlood{}, nil })
}

// Describe implements Strategy.
func (pulseFlood) Describe() Info { return pulseFloodInfo }

// Tick implements Strategy.
func (pulseFlood) Tick(ctx BotCtx) {
	start, _ := ctx.AttackWindow()
	if (ctx.Now()-start)%pulsePeriod >= pulseOn {
		return // silent phase: no packet, no Sent accounting
	}
	sendSpoofedSYN(ctx)
}

// OnSynAck implements Strategy: replies to spoofed sources never route
// back.
func (pulseFlood) OnSynAck(BotCtx, SynAck) {}
