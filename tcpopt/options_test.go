package tcpopt

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMarshalParseRoundTrip(t *testing.T) {
	opts := []Option{
		MSSOption(1460),
		WScaleOption(7),
		TimestampsOption(12345, 678),
	}
	b, err := MarshalOptions(opts)
	if err != nil {
		t.Fatalf("MarshalOptions: %v", err)
	}
	if len(b)%4 != 0 {
		t.Errorf("options area %d bytes, not 32-bit aligned", len(b))
	}
	got, err := ParseOptions(b)
	if err != nil {
		t.Fatalf("ParseOptions: %v", err)
	}
	if len(got) != len(opts) {
		t.Fatalf("parsed %d options, want %d", len(got), len(opts))
	}
	for i := range opts {
		if got[i].Kind != opts[i].Kind || !bytes.Equal(got[i].Data, opts[i].Data) {
			t.Errorf("option %d = %+v, want %+v", i, got[i], opts[i])
		}
	}
}

func TestParseOptionsHandlesNOPAndEOL(t *testing.T) {
	b := []byte{KindNOP, KindNOP, KindMSS, 4, 0x05, 0xb4, KindEOL, 0xff}
	got, err := ParseOptions(b)
	if err != nil {
		t.Fatalf("ParseOptions: %v", err)
	}
	if len(got) != 1 || got[0].Kind != KindMSS {
		t.Fatalf("parsed %+v, want one MSS option", got)
	}
	mss, err := ParseMSS(got[0])
	if err != nil || mss != 1460 {
		t.Errorf("ParseMSS = %d, %v; want 1460", mss, err)
	}
}

func TestParseOptionsMalformed(t *testing.T) {
	tests := []struct {
		name string
		b    []byte
	}{
		{"truncated length", []byte{KindMSS}},
		{"length too small", []byte{KindMSS, 1}},
		{"length overruns", []byte{KindMSS, 10, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseOptions(tt.b); !errors.Is(err, ErrOptionsMalformed) {
				t.Errorf("ParseOptions(%x) error = %v, want ErrOptionsMalformed", tt.b, err)
			}
		})
	}
}

func TestMarshalOptionsTooLong(t *testing.T) {
	big := Option{Kind: 0x99, Data: make([]byte, 39)}
	if _, err := MarshalOptions([]Option{big}); !errors.Is(err, ErrOptionsTooLong) {
		t.Errorf("MarshalOptions error = %v, want ErrOptionsTooLong", err)
	}
}

func TestStandardOptionAccessors(t *testing.T) {
	if _, err := ParseMSS(WScaleOption(3)); err == nil {
		t.Error("ParseMSS accepted a WScale option")
	}
	ws, err := ParseWScale(WScaleOption(9))
	if err != nil || ws != 9 {
		t.Errorf("ParseWScale = %d, %v", ws, err)
	}
	tsVal, tsEcr, err := ParseTimestamps(TimestampsOption(7, 8))
	if err != nil || tsVal != 7 || tsEcr != 8 {
		t.Errorf("ParseTimestamps = %d, %d, %v", tsVal, tsEcr, err)
	}
	if _, _, err := ParseTimestamps(MSSOption(1)); err == nil {
		t.Error("ParseTimestamps accepted an MSS option")
	}
}

func TestFindOption(t *testing.T) {
	opts := []Option{MSSOption(100), WScaleOption(2)}
	if o, ok := FindOption(opts, KindWScale); !ok || o.Data[0] != 2 {
		t.Errorf("FindOption(WScale) = %+v, %v", o, ok)
	}
	if _, ok := FindOption(opts, KindChallenge); ok {
		t.Error("FindOption found a challenge in plain options")
	}
}

// Property: marshal→parse round-trips arbitrary small option payloads and
// the marshalled area is always 32-bit aligned.
func TestMarshalParseProperty(t *testing.T) {
	f := func(kind uint8, data []byte) bool {
		if kind == KindEOL || kind == KindNOP {
			kind = KindMSS
		}
		if len(data) > 20 {
			data = data[:20]
		}
		b, err := MarshalOptions([]Option{{Kind: kind, Data: data}})
		if err != nil {
			return false
		}
		if len(b)%4 != 0 {
			return false
		}
		got, err := ParseOptions(b)
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0].Kind == kind && bytes.Equal(got[0].Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
