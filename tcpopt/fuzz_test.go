package tcpopt

import (
	"testing"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// FuzzParseOptions exercises the options parser on arbitrary bytes: it must
// never panic, and anything it parses must re-marshal and re-parse to the
// same structure.
func FuzzParseOptions(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{KindNOP, KindNOP, KindEOL})
	f.Add([]byte{KindMSS, 4, 0x05, 0xb4})
	f.Add([]byte{KindChallenge, 3, 0xff})
	f.Add([]byte{KindSolution, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		opts, err := ParseOptions(data)
		if err != nil {
			return
		}
		remarshalled, err := MarshalOptions(opts)
		if err != nil {
			// Parsed options can exceed marshal limits (e.g. >40 bytes of
			// input); that is allowed.
			return
		}
		again, err := ParseOptions(remarshalled)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(opts) {
			t.Fatalf("round trip changed option count: %d → %d", len(opts), len(again))
		}
		for i := range opts {
			if again[i].Kind != opts[i].Kind || string(again[i].Data) != string(opts[i].Data) {
				t.Fatalf("option %d changed: %+v → %+v", i, opts[i], again[i])
			}
		}
	})
}

// FuzzParseChallenge exercises the challenge block decoder.
func FuzzParseChallenge(f *testing.F) {
	valid, _ := EncodeChallenge(puzzle.Challenge{
		Params:    puzzle.Params{K: 2, M: 8, L: 32},
		Timestamp: 42,
		Preimage:  []byte{1, 2, 3, 4},
	}, true)
	f.Add(valid.Data)
	f.Add([]byte{})
	f.Add([]byte{2, 8, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		blk, err := ParseChallenge(Option{Kind: KindChallenge, Data: data})
		if err != nil {
			return
		}
		// Whatever parsed must encode back losslessly.
		opt, err := EncodeChallenge(blk.Challenge, blk.HasTimestamp)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ParseChallenge(opt)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Challenge.Params != blk.Challenge.Params {
			t.Fatalf("params changed: %v → %v", blk.Challenge.Params, again.Challenge.Params)
		}
	})
}

// FuzzParseSolution exercises the solution block decoder against the
// default server parameters.
func FuzzParseSolution(f *testing.F) {
	params := puzzle.Params{K: 2, M: 17, L: 32}
	sol := puzzle.Solution{
		Params:    params,
		Timestamp: 7,
		Solutions: [][]byte{{1, 2, 3, 4}, {5, 6, 7, 8}},
	}
	valid, _ := EncodeSolution(SolutionBlock{MSS: 1460, WScale: 7, HasTimestamp: true, Solution: sol})
	f.Add(valid.Data)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		blk, err := ParseSolution(Option{Kind: KindSolution, Data: data}, params)
		if err != nil {
			return
		}
		if len(blk.Solution.Solutions) != int(params.K) {
			t.Fatalf("parsed %d solutions, want %d", len(blk.Solution.Solutions), params.K)
		}
		for _, s := range blk.Solution.Solutions {
			if len(s) != params.SolutionBytes() {
				t.Fatalf("solution length %d, want %d", len(s), params.SolutionBytes())
			}
		}
	})
}
