package tcpopt

import (
	"bytes"
	"testing"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

// FuzzChallengeRoundTrip fuzzes the challenge codec constructively: every
// valid (k, m, l) challenge must survive the full wire path — Encode →
// MarshalOptions → ParseOptions → FindOption → ParseChallenge —
// bit-for-bit, with and without an embedded timestamp. This is the
// encode/decode contract the simulated kernels and the puzzlenet preamble
// both build on; FuzzParseChallenge covers the adversarial direction.
func FuzzChallengeRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(17), uint8(32), []byte("preimage-bytes--"), uint32(7), true)
	f.Add(uint8(1), uint8(8), uint8(32), []byte{1, 2, 3, 4}, uint32(0), false)
	f.Add(uint8(4), uint8(1), uint8(8), []byte{0xff}, uint32(1<<31), true)
	f.Add(uint8(3), uint8(64), uint8(64), []byte{}, uint32(0xffffffff), false)
	f.Fuzz(func(t *testing.T, k, m, l uint8, pre []byte, ts uint32, embedTS bool) {
		params := puzzle.Params{K: k, M: m, L: l}
		if params.Validate() != nil {
			return
		}
		preimage := make([]byte, params.SolutionBytes())
		copy(preimage, pre)
		ch := puzzle.Challenge{Params: params, Preimage: preimage, Timestamp: ts}
		opt, err := EncodeChallenge(ch, embedTS)
		if err != nil {
			t.Fatalf("EncodeChallenge(%+v): %v", params, err)
		}
		raw, err := MarshalOptions([]Option{opt})
		if err != nil {
			t.Fatalf("MarshalOptions: %v", err)
		}
		opts, err := ParseOptions(raw)
		if err != nil {
			t.Fatalf("ParseOptions: %v", err)
		}
		got, ok := FindOption(opts, KindChallenge)
		if !ok {
			t.Fatal("challenge option lost in marshal round-trip")
		}
		dec, err := ParseChallenge(got)
		if err != nil {
			t.Fatalf("ParseChallenge: %v", err)
		}
		if dec.Challenge.Params != params {
			t.Fatalf("params %+v, want %+v", dec.Challenge.Params, params)
		}
		if !bytes.Equal(dec.Challenge.Preimage, preimage) {
			t.Fatalf("preimage %x, want %x", dec.Challenge.Preimage, preimage)
		}
		if dec.HasTimestamp != embedTS {
			t.Fatalf("HasTimestamp = %v, want %v", dec.HasTimestamp, embedTS)
		}
		if embedTS && dec.Challenge.Timestamp != ts {
			t.Fatalf("timestamp %d, want %d", dec.Challenge.Timestamp, ts)
		}
	})
}

// FuzzParseOptions exercises the options parser on arbitrary bytes: it must
// never panic, and anything it parses must re-marshal and re-parse to the
// same structure.
func FuzzParseOptions(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{KindNOP, KindNOP, KindEOL})
	f.Add([]byte{KindMSS, 4, 0x05, 0xb4})
	f.Add([]byte{KindChallenge, 3, 0xff})
	f.Add([]byte{KindSolution, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		opts, err := ParseOptions(data)
		if err != nil {
			return
		}
		remarshalled, err := MarshalOptions(opts)
		if err != nil {
			// Parsed options can exceed marshal limits (e.g. >40 bytes of
			// input); that is allowed.
			return
		}
		again, err := ParseOptions(remarshalled)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(opts) {
			t.Fatalf("round trip changed option count: %d → %d", len(opts), len(again))
		}
		for i := range opts {
			if again[i].Kind != opts[i].Kind || string(again[i].Data) != string(opts[i].Data) {
				t.Fatalf("option %d changed: %+v → %+v", i, opts[i], again[i])
			}
		}
	})
}

// FuzzParseChallenge exercises the challenge block decoder.
func FuzzParseChallenge(f *testing.F) {
	valid, _ := EncodeChallenge(puzzle.Challenge{
		Params:    puzzle.Params{K: 2, M: 8, L: 32},
		Timestamp: 42,
		Preimage:  []byte{1, 2, 3, 4},
	}, true)
	f.Add(valid.Data)
	f.Add([]byte{})
	f.Add([]byte{2, 8, 32})
	f.Fuzz(func(t *testing.T, data []byte) {
		blk, err := ParseChallenge(Option{Kind: KindChallenge, Data: data})
		if err != nil {
			return
		}
		// Whatever parsed must encode back losslessly.
		opt, err := EncodeChallenge(blk.Challenge, blk.HasTimestamp)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ParseChallenge(opt)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Challenge.Params != blk.Challenge.Params {
			t.Fatalf("params changed: %v → %v", blk.Challenge.Params, again.Challenge.Params)
		}
	})
}

// FuzzParseSolution exercises the solution block decoder against the
// default server parameters.
func FuzzParseSolution(f *testing.F) {
	params := puzzle.Params{K: 2, M: 17, L: 32}
	sol := puzzle.Solution{
		Params:    params,
		Timestamp: 7,
		Solutions: [][]byte{{1, 2, 3, 4}, {5, 6, 7, 8}},
	}
	valid, _ := EncodeSolution(SolutionBlock{MSS: 1460, WScale: 7, HasTimestamp: true, Solution: sol})
	f.Add(valid.Data)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		blk, err := ParseSolution(Option{Kind: KindSolution, Data: data}, params)
		if err != nil {
			return
		}
		if len(blk.Solution.Solutions) != int(params.K) {
			t.Fatalf("parsed %d solutions, want %d", len(blk.Solution.Solutions), params.K)
		}
		for _, s := range blk.Solution.Solutions {
			if len(s) != params.SolutionBytes() {
				t.Fatalf("solution length %d, want %d", len(s), params.SolutionBytes())
			}
		}
	})
}
