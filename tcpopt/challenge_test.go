package tcpopt

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

func testChallenge(t *testing.T, p puzzle.Params) puzzle.Challenge {
	t.Helper()
	is, err := puzzle.NewIssuer(puzzle.WithParams(p))
	if err != nil {
		t.Fatalf("NewIssuer: %v", err)
	}
	return is.IssueAt(puzzle.FlowID{SrcPort: 1, DstPort: 2, ISN: 3}, 42)
}

func TestChallengeRoundTrip(t *testing.T) {
	for _, embedTS := range []bool{true, false} {
		p := puzzle.Params{K: 2, M: 17, L: 64}
		ch := testChallenge(t, p)
		opt, err := EncodeChallenge(ch, embedTS)
		if err != nil {
			t.Fatalf("EncodeChallenge(embedTS=%v): %v", embedTS, err)
		}
		blk, err := ParseChallenge(opt)
		if err != nil {
			t.Fatalf("ParseChallenge(embedTS=%v): %v", embedTS, err)
		}
		if blk.HasTimestamp != embedTS {
			t.Errorf("HasTimestamp = %v, want %v", blk.HasTimestamp, embedTS)
		}
		if blk.Challenge.Params != p {
			t.Errorf("params = %v, want %v", blk.Challenge.Params, p)
		}
		if !bytes.Equal(blk.Challenge.Preimage, ch.Preimage) {
			t.Errorf("preimage mismatch")
		}
		if embedTS && blk.Challenge.Timestamp != ch.Timestamp {
			t.Errorf("timestamp = %d, want %d", blk.Challenge.Timestamp, ch.Timestamp)
		}
	}
}

func TestSolutionRoundTrip(t *testing.T) {
	for _, embedTS := range []bool{true, false} {
		p := puzzle.Params{K: 2, M: 4, L: 64}
		ch := testChallenge(t, p)
		sol, _, err := puzzle.Solve(ch)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		in := SolutionBlock{MSS: 1460, WScale: 7, HasTimestamp: embedTS, Solution: sol}
		opt, err := EncodeSolution(in)
		if err != nil {
			t.Fatalf("EncodeSolution: %v", err)
		}
		out, err := ParseSolution(opt, p)
		if err != nil {
			t.Fatalf("ParseSolution: %v", err)
		}
		if out.MSS != 1460 || out.WScale != 7 || out.HasTimestamp != embedTS {
			t.Errorf("header fields = %+v", out)
		}
		if embedTS && out.Solution.Timestamp != sol.Timestamp {
			t.Errorf("timestamp = %d, want %d", out.Solution.Timestamp, sol.Timestamp)
		}
		if len(out.Solution.Solutions) != int(p.K) {
			t.Fatalf("got %d solutions, want %d", len(out.Solution.Solutions), p.K)
		}
		for i := range sol.Solutions {
			if !bytes.Equal(out.Solution.Solutions[i], sol.Solutions[i]) {
				t.Errorf("solution %d mismatch", i)
			}
		}
	}
}

func TestSolutionVerifiesAfterWireRoundTrip(t *testing.T) {
	// End-to-end statelessness: challenge goes over the wire, comes back as
	// a solution block with an echoed timestamp, and still verifies.
	p := puzzle.Params{K: 2, M: 4, L: 64}
	is, err := puzzle.NewIssuer(puzzle.WithParams(p))
	if err != nil {
		t.Fatalf("NewIssuer: %v", err)
	}
	flow := puzzle.FlowID{SrcIP: [4]byte{1, 2, 3, 4}, SrcPort: 5555, DstPort: 80, ISN: 99}
	chOpt, err := EncodeChallenge(is.Issue(flow), true)
	if err != nil {
		t.Fatalf("EncodeChallenge: %v", err)
	}

	// Client side.
	blk, err := ParseChallenge(chOpt)
	if err != nil {
		t.Fatalf("ParseChallenge: %v", err)
	}
	sol, _, err := puzzle.Solve(blk.Challenge)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	solOpt, err := EncodeSolution(SolutionBlock{MSS: 1200, WScale: 2, HasTimestamp: true, Solution: sol})
	if err != nil {
		t.Fatalf("EncodeSolution: %v", err)
	}

	// Server side: parse against current params and verify.
	got, err := ParseSolution(solOpt, is.Params())
	if err != nil {
		t.Fatalf("ParseSolution: %v", err)
	}
	if err := is.Verify(flow, got.Solution); err != nil {
		t.Fatalf("Verify after wire round trip: %v", err)
	}
}

func TestParseChallengeRejectsMalformed(t *testing.T) {
	p := puzzle.Params{K: 1, M: 4, L: 64}
	opt, err := EncodeChallenge(testChallenge(t, p), true)
	if err != nil {
		t.Fatalf("EncodeChallenge: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(Option) Option
	}{
		{"wrong kind", func(o Option) Option { o.Kind = KindSolution; return o }},
		{"truncated", func(o Option) Option { o.Data = o.Data[:2]; return o }},
		{"body length off", func(o Option) Option { o.Data = o.Data[:len(o.Data)-1]; return o }},
		{"bad params", func(o Option) Option {
			d := bytes.Clone(o.Data)
			d[0] = 0 // k = 0
			o.Data = d
			return o
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseChallenge(tt.mutate(opt)); err == nil {
				t.Error("ParseChallenge accepted malformed input")
			}
		})
	}
}

func TestParseSolutionRejectsMalformed(t *testing.T) {
	p := puzzle.Params{K: 1, M: 4, L: 64}
	sol, _, err := puzzle.Solve(testChallenge(t, p))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	opt, err := EncodeSolution(SolutionBlock{MSS: 1460, Solution: sol})
	if err != nil {
		t.Fatalf("EncodeSolution: %v", err)
	}
	if _, err := ParseSolution(Option{Kind: KindChallenge, Data: opt.Data}, p); err == nil {
		t.Error("ParseSolution accepted wrong kind")
	}
	if _, err := ParseSolution(Option{Kind: KindSolution, Data: opt.Data[:3]}, p); err == nil {
		t.Error("ParseSolution accepted truncated body")
	}
	// Parsing against different server params must fail: body length no
	// longer matches k·l/8.
	other := puzzle.Params{K: 2, M: 4, L: 64}
	if _, err := ParseSolution(opt, other); !errors.Is(err, ErrSolutionMalformed) {
		t.Errorf("ParseSolution with mismatched params error = %v, want ErrSolutionMalformed", err)
	}
}

func TestEncodeRejectsOversizeBlocks(t *testing.T) {
	// k=4 with l=64 plus timestamp cannot fit the 40-byte option area.
	p := puzzle.Params{K: 4, M: 4, L: 64}
	sol := puzzle.Solution{Params: p, Solutions: make([][]byte, 4)}
	for i := range sol.Solutions {
		sol.Solutions[i] = make([]byte, 8)
	}
	_, err := EncodeSolution(SolutionBlock{HasTimestamp: true, Solution: sol})
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("EncodeSolution error = %v, want ErrTooLarge", err)
	}
	// With l=32 the same k fits.
	p32 := puzzle.Params{K: 4, M: 4, L: 32}
	sol32 := puzzle.Solution{Params: p32, Solutions: make([][]byte, 4)}
	for i := range sol32.Solutions {
		sol32.Solutions[i] = make([]byte, 4)
	}
	if _, err := EncodeSolution(SolutionBlock{HasTimestamp: true, Solution: sol32}); err != nil {
		t.Errorf("EncodeSolution(l=32): %v", err)
	}
}

func TestWireSizes(t *testing.T) {
	tests := []struct {
		p          puzzle.Params
		embedTS    bool
		wantCh     int
		wantSol    int
		fitsHeader bool
	}{
		{puzzle.Params{K: 2, M: 17, L: 64}, true, 20, 28, true},
		{puzzle.Params{K: 2, M: 17, L: 64}, false, 16, 24, true},
		{puzzle.Params{K: 1, M: 8, L: 32}, true, 16, 16, true},
		{puzzle.Params{K: 4, M: 20, L: 32}, true, 16, 28, true},
	}
	for _, tt := range tests {
		if got := ChallengeWireSize(tt.p, tt.embedTS); got != tt.wantCh {
			t.Errorf("ChallengeWireSize(%v, %v) = %d, want %d", tt.p, tt.embedTS, got, tt.wantCh)
		}
		got := SolutionWireSize(tt.p, tt.embedTS)
		if got != tt.wantSol {
			t.Errorf("SolutionWireSize(%v, %v) = %d, want %d", tt.p, tt.embedTS, got, tt.wantSol)
		}
		if tt.fitsHeader != (got <= MaxOptionsLen) {
			t.Errorf("SolutionWireSize(%v) fit = %v, want %v", tt.p, got <= MaxOptionsLen, tt.fitsHeader)
		}
	}
}

// Property: challenge encode/parse round-trips for random preimages across
// all valid byte lengths that fit the option area.
func TestChallengeRoundTripProperty(t *testing.T) {
	f := func(k, m uint8, pre [8]byte, ts uint32, embedTS bool) bool {
		p := puzzle.Params{K: k%4 + 1, M: m%32 + 1, L: 64}
		ch := puzzle.Challenge{Params: p, Timestamp: ts, Preimage: pre[:]}
		opt, err := EncodeChallenge(ch, embedTS)
		if err != nil {
			return false
		}
		blk, err := ParseChallenge(opt)
		if err != nil {
			return false
		}
		ok := blk.Challenge.Params == p && bytes.Equal(blk.Challenge.Preimage, pre[:])
		if embedTS {
			ok = ok && blk.Challenge.Timestamp == ts
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
