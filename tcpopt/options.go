package tcpopt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// TCP option kinds handled by this package.
const (
	KindEOL           = 0x00
	KindNOP           = 0x01
	KindMSS           = 0x02
	KindWScale        = 0x03
	KindSACKPermitted = 0x04
	KindTimestamps    = 0x08
	// KindChallenge is the unallocated opcode the paper assigns to the
	// puzzle challenge option.
	KindChallenge = 0xfc
	// KindSolution is the unallocated opcode the paper assigns to the
	// puzzle solution option.
	KindSolution = 0xfd
)

// MaxOptionsLen is the maximum length of a TCP options area: the data
// offset field allows a 60-byte header, 40 bytes beyond the fixed 20.
const MaxOptionsLen = 40

var (
	// ErrOptionsMalformed reports an undecodable options area.
	ErrOptionsMalformed = errors.New("tcpopt: malformed options")
	// ErrOptionsTooLong reports an options area exceeding MaxOptionsLen.
	ErrOptionsTooLong = errors.New("tcpopt: options exceed 40 bytes")
	// ErrOptionNotFound reports a missing option kind.
	ErrOptionNotFound = errors.New("tcpopt: option not found")
)

// Option is a single decoded TCP option. NOP and EOL are consumed during
// parsing and never appear in the result.
type Option struct {
	Kind uint8
	Data []byte
}

// ParseOptions decodes a TCP options area. It tolerates NOP padding and
// stops at EOL, per RFC 793.
func ParseOptions(b []byte) ([]Option, error) {
	var opts []Option
	i := 0
	for i < len(b) {
		kind := b[i]
		switch kind {
		case KindEOL:
			return opts, nil
		case KindNOP:
			i++
			continue
		}
		if i+1 >= len(b) {
			return nil, fmt.Errorf("tcpopt: option 0x%02x truncated at length byte: %w",
				kind, ErrOptionsMalformed)
		}
		length := int(b[i+1])
		if length < 2 || i+length > len(b) {
			return nil, fmt.Errorf("tcpopt: option 0x%02x has bad length %d: %w",
				kind, length, ErrOptionsMalformed)
		}
		opts = append(opts, Option{Kind: kind, Data: b[i+2 : i+length]})
		i += length
	}
	return opts, nil
}

// MarshalOptions encodes options back-to-back and pads the area with NOPs to
// a 32-bit boundary. It fails if the result would not fit the TCP header.
func MarshalOptions(opts []Option) ([]byte, error) {
	var out []byte
	for _, o := range opts {
		if len(o.Data) > 253 {
			return nil, fmt.Errorf("tcpopt: option 0x%02x data %d bytes: %w",
				o.Kind, len(o.Data), ErrOptionsMalformed)
		}
		out = append(out, o.Kind, uint8(2+len(o.Data)))
		out = append(out, o.Data...)
	}
	for len(out)%4 != 0 {
		out = append(out, KindNOP)
	}
	if len(out) > MaxOptionsLen {
		return nil, fmt.Errorf("tcpopt: %d bytes: %w", len(out), ErrOptionsTooLong)
	}
	return out, nil
}

// FindOption returns the first option of the given kind.
func FindOption(opts []Option, kind uint8) (Option, bool) {
	for _, o := range opts {
		if o.Kind == kind {
			return o, true
		}
	}
	return Option{}, false
}

// MSSOption builds a standard Maximum Segment Size option.
func MSSOption(mss uint16) Option {
	return Option{Kind: KindMSS, Data: binary.BigEndian.AppendUint16(nil, mss)}
}

// ParseMSS extracts the MSS value from an MSS option.
func ParseMSS(o Option) (uint16, error) {
	if o.Kind != KindMSS || len(o.Data) != 2 {
		return 0, fmt.Errorf("tcpopt: bad MSS option: %w", ErrOptionsMalformed)
	}
	return binary.BigEndian.Uint16(o.Data), nil
}

// WScaleOption builds a standard window scale option.
func WScaleOption(shift uint8) Option {
	return Option{Kind: KindWScale, Data: []byte{shift}}
}

// ParseWScale extracts the shift count from a window scale option.
func ParseWScale(o Option) (uint8, error) {
	if o.Kind != KindWScale || len(o.Data) != 1 {
		return 0, fmt.Errorf("tcpopt: bad WScale option: %w", ErrOptionsMalformed)
	}
	return o.Data[0], nil
}

// TimestampsOption builds a standard TCP timestamps option (TSval, TSecr).
func TimestampsOption(tsVal, tsEcr uint32) Option {
	data := binary.BigEndian.AppendUint32(nil, tsVal)
	data = binary.BigEndian.AppendUint32(data, tsEcr)
	return Option{Kind: KindTimestamps, Data: data}
}

// ParseTimestamps extracts (TSval, TSecr) from a timestamps option.
func ParseTimestamps(o Option) (tsVal, tsEcr uint32, err error) {
	if o.Kind != KindTimestamps || len(o.Data) != 8 {
		return 0, 0, fmt.Errorf("tcpopt: bad timestamps option: %w", ErrOptionsMalformed)
	}
	return binary.BigEndian.Uint32(o.Data), binary.BigEndian.Uint32(o.Data[4:]), nil
}
