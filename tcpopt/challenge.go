package tcpopt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
)

var (
	// ErrChallengeMalformed reports an undecodable challenge option.
	ErrChallengeMalformed = errors.New("tcpopt: malformed challenge option")
	// ErrSolutionMalformed reports an undecodable solution option.
	ErrSolutionMalformed = errors.New("tcpopt: malformed solution option")
	// ErrTooLarge reports a block that cannot fit the TCP options area.
	ErrTooLarge = errors.New("tcpopt: block exceeds TCP option space")
)

// ChallengeBlock is the decoded payload of a 0xfc challenge option.
type ChallengeBlock struct {
	// Challenge carries (k, m, l), the preimage, and — when the block
	// embeds one — the issue timestamp.
	Challenge puzzle.Challenge
	// HasTimestamp reports whether the timestamp was embedded in the block
	// (true when the standard TCP timestamps option is not in use).
	HasTimestamp bool
}

// SolutionBlock is the decoded payload of a 0xfd solution option. It
// re-carries the MSS and window-scale values from the client's original SYN
// because the stateless server discarded them (paper §5).
type SolutionBlock struct {
	MSS          uint16
	WScale       uint8
	HasTimestamp bool
	Solution     puzzle.Solution
}

// EncodeChallenge encodes a challenge into a 0xfc option. When embedTS is
// true the issue timestamp is carried inside the block; otherwise the caller
// is expected to transport it in the standard timestamps option.
func EncodeChallenge(ch puzzle.Challenge, embedTS bool) (Option, error) {
	if err := ch.Params.Validate(); err != nil {
		return Option{}, err
	}
	if len(ch.Preimage) != ch.Params.SolutionBytes() {
		return Option{}, fmt.Errorf("tcpopt: preimage %d bytes, want %d: %w",
			len(ch.Preimage), ch.Params.SolutionBytes(), ErrChallengeMalformed)
	}
	data := make([]byte, 0, 3+len(ch.Preimage)+4)
	data = append(data, ch.Params.K, ch.Params.M, ch.Params.L)
	data = append(data, ch.Preimage...)
	if embedTS {
		data = binary.BigEndian.AppendUint32(data, ch.Timestamp)
	}
	if 2+len(data) > MaxOptionsLen {
		return Option{}, fmt.Errorf("tcpopt: challenge block %d bytes: %w", 2+len(data), ErrTooLarge)
	}
	return Option{Kind: KindChallenge, Data: data}, nil
}

// ParseChallenge decodes a 0xfc option.
func ParseChallenge(o Option) (ChallengeBlock, error) {
	if o.Kind != KindChallenge {
		return ChallengeBlock{}, fmt.Errorf("tcpopt: kind 0x%02x: %w", o.Kind, ErrChallengeMalformed)
	}
	if len(o.Data) < 3 {
		return ChallengeBlock{}, fmt.Errorf("tcpopt: challenge %d bytes: %w",
			len(o.Data), ErrChallengeMalformed)
	}
	params := puzzle.Params{K: o.Data[0], M: o.Data[1], L: o.Data[2]}
	if err := params.Validate(); err != nil {
		return ChallengeBlock{}, fmt.Errorf("tcpopt: challenge params: %w", err)
	}
	rest := o.Data[3:]
	preLen := params.SolutionBytes()
	var blk ChallengeBlock
	switch len(rest) {
	case preLen:
	case preLen + 4:
		blk.HasTimestamp = true
		blk.Challenge.Timestamp = binary.BigEndian.Uint32(rest[preLen:])
	default:
		return ChallengeBlock{}, fmt.Errorf("tcpopt: challenge body %d bytes for l=%d: %w",
			len(rest), params.L, ErrChallengeMalformed)
	}
	blk.Challenge.Params = params
	blk.Challenge.Preimage = append([]byte(nil), rest[:preLen]...)
	return blk, nil
}

// EncodeSolution encodes a solved challenge into a 0xfd option.
func EncodeSolution(blk SolutionBlock) (Option, error) {
	params := blk.Solution.Params
	if err := params.Validate(); err != nil {
		return Option{}, err
	}
	if len(blk.Solution.Solutions) != int(params.K) {
		return Option{}, fmt.Errorf("tcpopt: %d solutions, want %d: %w",
			len(blk.Solution.Solutions), params.K, ErrSolutionMalformed)
	}
	data := make([]byte, 0, 3+4+int(params.K)*params.SolutionBytes())
	data = binary.BigEndian.AppendUint16(data, blk.MSS)
	data = append(data, blk.WScale)
	if blk.HasTimestamp {
		data = binary.BigEndian.AppendUint32(data, blk.Solution.Timestamp)
	}
	for i, s := range blk.Solution.Solutions {
		if len(s) != params.SolutionBytes() {
			return Option{}, fmt.Errorf("tcpopt: solution %d is %d bytes, want %d: %w",
				i+1, len(s), params.SolutionBytes(), ErrSolutionMalformed)
		}
		data = append(data, s...)
	}
	if 2+len(data) > MaxOptionsLen {
		return Option{}, fmt.Errorf("tcpopt: solution block %d bytes: %w", 2+len(data), ErrTooLarge)
	}
	return Option{Kind: KindSolution, Data: data}, nil
}

// ParseSolution decodes a 0xfd option. The stateless server interprets the
// block against its currently configured difficulty parameters; timestamp
// presence is deduced from the block length.
func ParseSolution(o Option, params puzzle.Params) (SolutionBlock, error) {
	if o.Kind != KindSolution {
		return SolutionBlock{}, fmt.Errorf("tcpopt: kind 0x%02x: %w", o.Kind, ErrSolutionMalformed)
	}
	if err := params.Validate(); err != nil {
		return SolutionBlock{}, err
	}
	solLen := int(params.K) * params.SolutionBytes()
	var blk SolutionBlock
	switch len(o.Data) {
	case 3 + solLen:
	case 3 + 4 + solLen:
		blk.HasTimestamp = true
	default:
		return SolutionBlock{}, fmt.Errorf("tcpopt: solution body %d bytes for %v: %w",
			len(o.Data), params, ErrSolutionMalformed)
	}
	blk.MSS = binary.BigEndian.Uint16(o.Data)
	blk.WScale = o.Data[2]
	rest := o.Data[3:]
	if blk.HasTimestamp {
		blk.Solution.Timestamp = binary.BigEndian.Uint32(rest)
		rest = rest[4:]
	}
	blk.Solution.Params = params
	blk.Solution.Solutions = make([][]byte, params.K)
	sb := params.SolutionBytes()
	for i := 0; i < int(params.K); i++ {
		blk.Solution.Solutions[i] = append([]byte(nil), rest[i*sb:(i+1)*sb]...)
	}
	return blk, nil
}

// ChallengeWireSize returns the encoded (padded) size in bytes of a
// challenge option for the given parameters — the paper's "low packet-size
// overhead" metric.
func ChallengeWireSize(p puzzle.Params, embedTS bool) int {
	n := 2 + 3 + p.SolutionBytes()
	if embedTS {
		n += 4
	}
	return align4(n)
}

// SolutionWireSize returns the encoded (padded) size in bytes of a solution
// option for the given parameters.
func SolutionWireSize(p puzzle.Params, embedTS bool) int {
	n := 2 + 3 + int(p.K)*p.SolutionBytes()
	if embedTS {
		n += 4
	}
	return align4(n)
}

func align4(n int) int { return (n + 3) &^ 3 }
