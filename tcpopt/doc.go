// Package tcpopt encodes and decodes the TCP option blocks of the client
// puzzles extension (paper §5, Figures 4 and 5) together with the standard
// TCP options the extension interacts with (MSS, window scale, timestamps).
//
// The challenge option (kind 0xfc) rides on the SYN-ACK:
//
//	+--------+--------+--------+--------+
//	| 0xfc   | Length |   k    |   m    |
//	+--------+--------+--------+--------+
//	|   l    |  Preimage (l/8 bytes)... |
//	+--------+--------+--------+--------+
//	| [timestamp, 4 bytes, optional]    |
//	+--------+--------+--------+--------+
//	| NOP padding to 32-bit alignment   |
//	+-----------------------------------+
//
// The solution option (kind 0xfd) rides on the final ACK and re-sends the
// MSS and window-scale values the client announced in its SYN, because the
// stateless server discarded them:
//
//	+--------+--------+-----------------+
//	| 0xfd   | Length |    MSS value    |
//	+--------+--------+-----------------+
//	| Wscale | [timestamp, optional]    |
//	+--------+--------------------------+
//	| k solutions, l/8 bytes each ...   |
//	+-----------------------------------+
//	| NOP padding to 32-bit alignment   |
//	+-----------------------------------+
//
// When the standard TCP timestamps option is in use the challenge timestamp
// travels there and the embedded copy is omitted; otherwise both blocks
// carry the 4-byte timestamp (paper §5). Option blocks are padded with NOP
// (0x01) options so the options area stays 32-bit aligned.
//
// Parsing a solution block requires the current difficulty parameters
// (k, l): the server is stateless, so it interprets incoming solutions
// against its presently configured sysctl values.
package tcpopt
