// Quickstart: issue, solve and verify a TCP client puzzle, with the
// difficulty chosen by the paper's Stackelberg equilibrium.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tcppuzzles/tcppuzzles"
	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/tcpopt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Pick the difficulty from the paper's measured model parameters
	//    (§4.4): w_av = 140630 hashes per 400 ms, α = 1.1 ⇒ (k, m) = (2, 17).
	nash, err := tcppuzzles.NashParams(140630, 1.1)
	if err != nil {
		return err
	}
	fmt.Printf("Nash difficulty: %v — expected solve work %.0f hashes\n",
		nash, nash.ExpectedSolveHashes())

	// For this demo we solve something gentler so it finishes instantly.
	demo := puzzle.Params{K: nash.K, M: 12, L: 32}

	// 2. The server issues a challenge bound to the connection's flow.
	issuer, err := puzzle.NewIssuer(puzzle.WithParams(demo))
	if err != nil {
		return err
	}
	flow := puzzle.FlowID{
		SrcIP: [4]byte{192, 0, 2, 7}, DstIP: [4]byte{198, 51, 100, 1},
		SrcPort: 52044, DstPort: 443, ISN: 0x1d95c0de,
	}
	ch := issuer.Issue(flow)

	// 3. The challenge rides the SYN-ACK as TCP option 0xfc.
	chOpt, err := tcpopt.EncodeChallenge(ch, true)
	if err != nil {
		return err
	}
	fmt.Printf("challenge option: %d bytes on the wire\n", tcpopt.ChallengeWireSize(demo, true))

	// 4. The client parses and brute-forces the k solutions.
	parsed, err := tcpopt.ParseChallenge(chOpt)
	if err != nil {
		return err
	}
	start := time.Now()
	sol, stats, err := puzzle.Solve(parsed.Challenge)
	if err != nil {
		return err
	}
	fmt.Printf("solved with %d hash operations in %v (expected %.0f)\n",
		stats.Hashes, time.Since(start).Round(time.Microsecond), demo.ExpectedSolveHashes())

	// 5. The solution rides the final ACK as TCP option 0xfd, re-carrying
	//    the MSS and window scale the stateless server forgot.
	solOpt, err := tcpopt.EncodeSolution(tcpopt.SolutionBlock{
		MSS: 1460, WScale: 7, HasTimestamp: true, Solution: sol,
	})
	if err != nil {
		return err
	}
	blk, err := tcpopt.ParseSolution(solOpt, issuer.Params())
	if err != nil {
		return err
	}

	// 6. The server verifies statelessly and accepts the connection.
	info, err := issuer.VerifyDetailed(flow, blk.Solution)
	if err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	fmt.Printf("verified with %d hash operations — connection accepted\n", info.Hashes)

	// A replay on a different flow is rejected.
	other := flow
	other.SrcPort++
	if err := issuer.Verify(other, blk.Solution); err != nil {
		fmt.Printf("replay on different flow rejected: %v\n", err)
	}
	return nil
}
