// Real-TCP deployment: a puzzle-verifying proxy in front of a plain HTTP-ish
// backend, and a solving client connecting through it (the §7 front-end
// tier, over live sockets on localhost).
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/puzzlenet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Backend: a trivial text service (the paper's gettext/size).
	backend, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer backend.Close()
	go serveBackend(backend)

	// Front-end: puzzle-gated proxy at a modest difficulty.
	params := puzzle.Params{K: 2, M: 14, L: 32}
	issuer, err := puzzle.NewIssuer(puzzle.WithParams(params))
	if err != nil {
		return err
	}
	front, err := puzzlenet.Listen("127.0.0.1:0", issuer)
	if err != nil {
		return err
	}
	proxy := puzzlenet.NewProxy(front, backend.Addr().String())
	go func() {
		if err := proxy.Serve(); err != nil {
			log.Println("proxy:", err)
		}
	}()
	defer proxy.Close()

	fmt.Printf("backend  %s\n", backend.Addr())
	fmt.Printf("frontend %s (difficulty %v, ≈%.0f hashes/solve)\n",
		front.Addr(), params, params.ExpectedSolveHashes())

	// A solving client connects through the proxy.
	dialer := &puzzlenet.Dialer{
		OnSolve: func(p puzzle.Params, hashes uint64) {
			fmt.Printf("client solved %v with %d hashes\n", p, hashes)
		},
	}
	start := time.Now()
	conn, err := dialer.Dial("tcp", front.Addr().String())
	if err != nil {
		return fmt.Errorf("dial through proxy: %w", err)
	}
	defer conn.Close()
	fmt.Printf("connected in %v\n", time.Since(start).Round(time.Millisecond))

	if _, err := fmt.Fprintf(conn, "gettext/64\n"); err != nil {
		return err
	}
	reply := make([]byte, 64)
	if _, err := io.ReadFull(conn, reply); err != nil {
		return err
	}
	fmt.Printf("got %d bytes from the backend through the verified tunnel\n", len(reply))

	// A client that refuses to solve gets nothing.
	raw, err := net.Dial("tcp", front.Addr().String())
	if err != nil {
		return err
	}
	defer raw.Close()
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := fmt.Fprintf(raw, "gettext/64\n"); err != nil {
		return err
	}
	buf := make([]byte, 128)
	for {
		if _, err := raw.Read(buf); err != nil {
			fmt.Println("non-solving client was refused service, as intended")
			break
		}
	}
	stats := front.Stats()
	fmt.Printf("listener stats: %+v\n", stats)
	return nil
}

// serveBackend answers "gettext/N" lines with N bytes of text.
func serveBackend(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			var n int
			if _, err := fmt.Fscanf(conn, "gettext/%d\n", &n); err != nil || n <= 0 || n > 1<<20 {
				return
			}
			payload := make([]byte, n)
			for i := range payload {
				payload[i] = 'a' + byte(i%26)
			}
			_, _ = conn.Write(payload)
		}()
	}
}
