// Connection-flood scenario: the Mirai-style attack of the paper's
// introduction. A botnet of compromised machines completes TCP handshakes
// against a server and idles, exhausting its accept queue and worker pool.
// The example runs the same attack against an unprotected server, SYN
// cookies, and TCP client puzzles at the Nash difficulty, and prints what
// each defense salvages.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tcppuzzles/tcppuzzles/puzzle"
	"github.com/tcppuzzles/tcppuzzles/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := sim.Scenario{
		Duration:    180 * time.Second,
		AttackStart: 45 * time.Second,
		AttackStop:  135 * time.Second,

		NumClients:   8,
		ClientRate:   10,
		RequestBytes: 100_000,
		ClientsSolve: true,

		Params:        puzzle.Params{K: 2, M: 17, L: 32},
		Backlog:       1024,
		AcceptBacklog: 1024,

		Attack:     sim.AttackConnFlood,
		BotCount:   8,
		PerBotRate: 250,
		BotsSolve:  true, // the bots run patched kernels too

		Seed: 7,
	}

	fmt.Println("connection flood: 8 bots × 250 cps vs 8 clients × 10 req/s")
	fmt.Println()
	fmt.Printf("%-10s %14s %14s %14s %16s\n",
		"defense", "before (Mbps)", "during (Mbps)", "after (Mbps)", "attacker (cps)")
	for _, defense := range []sim.Defense{sim.DefenseNone, sim.DefenseCookies, sim.DefensePuzzles} {
		sc := base
		sc.Defense = defense
		res, err := sim.Run(sc)
		if err != nil {
			return fmt.Errorf("%s: %w", defense, err)
		}
		fmt.Printf("%-10s %14.2f %14.2f %14.2f %16.2f\n",
			defense, res.ClientMbpsBefore, res.ClientMbpsDuring, res.ClientMbpsAfter,
			res.EffectiveAttackRate)
	}
	fmt.Println()
	fmt.Println("Only puzzles preserve client service: the botnet is rate limited")
	fmt.Println("by its own CPUs, and its stale solutions expire before the server")
	fmt.Println("will accept them.")
	return nil
}
