// Difficulty selection with the Stackelberg game (§3–§4): sweep server
// provisioning and client hardware to see how the Nash-equilibrium puzzle
// difficulty moves, and cross-check the closed form against the finite-N
// numeric solver.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/tcppuzzles/tcppuzzles/game"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Client hardware profiles: hashes/second (see Fig. 3a / Table 1).
	devices := []struct {
		name string
		rate float64
	}{
		{"raspberry-pi-B", 49617},
		{"xeon-x3210", 330000},
		{"xeon-e3-1260l", 450000},
		{"modern-desktop", 5_000_000},
	}
	budget := 400 * time.Millisecond

	fmt.Println("Nash difficulty by client hardware and server provisioning")
	fmt.Printf("%-16s %12s | %-12s %-12s %-12s\n", "client", "w (hashes)",
		"α=0.5", "α=1.1", "α=4.0")
	for _, dev := range devices {
		wav := game.WavFromHashRate(dev.rate, budget)
		fmt.Printf("%-16s %12.0f |", dev.name, wav)
		for _, alpha := range []float64{0.5, 1.1, 4.0} {
			p, err := game.SelectParams(wav, alpha, game.SelectionConfig{})
			if err != nil {
				fmt.Printf(" %-12s", "n/a")
				continue
			}
			fmt.Printf(" k=%d,m=%-6d", p.K, p.M)
		}
		fmt.Println()
	}
	fmt.Println()

	// The worked example of §4.4, end to end.
	const (
		wav   = 140630.0
		alpha = 1.1
	)
	lstar, err := game.LStar(wav, alpha)
	if err != nil {
		return err
	}
	params, err := game.SelectParams(wav, alpha, game.SelectionConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("paper example: w_av=%.0f, α=%.1f ⇒ ℓ*=%.0f ⇒ (k,m)=(%d,%d)\n",
		wav, alpha, lstar, params.K, params.M)

	// Cross-check with the finite-N followers' game.
	for _, n := range []int{100, 1000, 10000} {
		g := game.UniformGame(n, wav, alpha*float64(n))
		finite, err := g.OptimalDifficulty()
		if err != nil {
			return err
		}
		fmt.Printf("finite N=%-6d numeric ℓ* = %.0f (asymptotic %.0f)\n", n, finite, lstar)
	}

	// What the clients do at equilibrium: rates and dropout.
	g := game.FiniteGame{Weights: []float64{20_000, 140_000, 600_000}, Mu: 50}
	rates, err := g.EquilibriumRates(lstar)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("heterogeneous clients at the Nash difficulty (requests/s):")
	for i, r := range rates {
		fmt.Printf("  client with w=%-8.0f → x* = %.2f\n", g.Weights[i], r)
	}
	fmt.Println("low-valuation clients drop out (x*=0) — the fairness concern of §7.")
	return nil
}
